//! Federation checkpointing: serialise the server's global parameters and
//! every client's persistent mask so a long-running federation can stop
//! and resume — the state a production Sub-FedAvg server would have to
//! persist (everything else is reconstructed deterministically from the
//! config seed).

use bytes::{Buf, BufMut, BytesMut};

/// A restorable snapshot of a Sub-FedAvg federation.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Round the snapshot was taken after (1-based; 0 = before training).
    pub round: u32,
    /// The server's dense global parameters.
    pub global: Vec<f32>,
    /// Each client's flat 0/1 mask (empty for mask-free algorithms).
    pub client_masks: Vec<Vec<f32>>,
}

const MAGIC: u32 = 0x5342_4643; // "SBFC"

/// What went wrong restoring or persisting a checkpoint.
///
/// Checkpoint images live on disk across process restarts, so
/// [`Checkpoint::decode`] treats them as untrusted input: every structural
/// problem maps to a variant here and none to a panic.
#[derive(Debug)]
pub enum CheckpointError {
    /// Shorter than the fixed 16-byte header.
    TruncatedHeader {
        /// Bytes actually present.
        got: usize,
    },
    /// Leading tag is not the checkpoint magic.
    BadMagic {
        /// Tag actually found.
        got: u32,
    },
    /// Global parameter section is cut short.
    TruncatedGlobal {
        /// Bytes the header's parameter count requires.
        needed: usize,
        /// Bytes remaining.
        got: usize,
    },
    /// Packed client-mask section is cut short.
    TruncatedMask {
        /// Bytes the header's client count requires.
        needed: usize,
        /// Bytes remaining.
        got: usize,
    },
    /// Header-declared lengths overflow the platform's address range.
    LengthOverflow,
    /// The checkpoint file could not be read or written.
    Io(std::io::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TruncatedHeader { got } => {
                write!(f, "truncated checkpoint header ({got} of 16 bytes)")
            }
            Self::BadMagic { got } => write!(f, "bad checkpoint magic {got:#010x}"),
            Self::TruncatedGlobal { needed, got } => {
                write!(f, "truncated global parameters (need {needed} bytes, got {got})")
            }
            Self::TruncatedMask { needed, got } => {
                write!(f, "truncated client mask (need {needed} bytes, got {got})")
            }
            Self::LengthOverflow => {
                write!(f, "header-declared lengths overflow the platform's address range")
            }
            Self::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl Checkpoint {
    /// Serialises the checkpoint. Masks are stored bit-packed via the wire
    /// format's encoding.
    ///
    /// # Panics
    ///
    /// Panics if any mask length differs from the global parameter count.
    pub fn encode(&self) -> Vec<u8> {
        for m in &self.client_masks {
            assert_eq!(m.len(), self.global.len(), "mask/global length mismatch");
        }
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(self.round);
        buf.put_u32_le(self.global.len() as u32);
        buf.put_u32_le(self.client_masks.len() as u32);
        for &v in &self.global {
            buf.put_f32_le(v);
        }
        for m in &self.client_masks {
            buf.extend_from_slice(&subfed_metrics::comm::pack_mask(m));
        }
        buf.to_vec()
    }

    /// Restores a checkpoint from bytes.
    ///
    /// Every length is re-derived with checked arithmetic and validated
    /// against the bytes actually present before any allocation, so a
    /// corrupt or adversarial image yields a [`CheckpointError`], never a
    /// panic or an unbounded allocation.
    ///
    /// # Errors
    ///
    /// Returns the corruption found on truncated, mistagged, or
    /// overflowing input.
    #[must_use = "a dropped Result hides the checkpoint corruption it reports"]
    pub fn decode(data: &[u8]) -> Result<Self, CheckpointError> {
        let mut buf = data;
        if buf.remaining() < 16 {
            return Err(CheckpointError::TruncatedHeader { got: buf.remaining() });
        }
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic { got: magic });
        }
        let round = buf.get_u32_le();
        let overflow = |_| CheckpointError::LengthOverflow;
        let n_params = usize::try_from(buf.get_u32_le()).map_err(overflow)?;
        let n_clients = usize::try_from(buf.get_u32_le()).map_err(overflow)?;
        let global_bytes = n_params.checked_mul(4).ok_or(CheckpointError::LengthOverflow)?;
        if buf.remaining() < global_bytes {
            return Err(CheckpointError::TruncatedGlobal {
                needed: global_bytes,
                got: buf.remaining(),
            });
        }
        let mut global = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            global.push(buf.get_f32_le());
        }
        let mask_len = usize::try_from(subfed_metrics::comm::mask_bytes(n_params))
            .map_err(|_| CheckpointError::LengthOverflow)?;
        let need = n_clients.checked_mul(mask_len).ok_or(CheckpointError::LengthOverflow)?;
        if buf.remaining() < need {
            return Err(CheckpointError::TruncatedMask { needed: need, got: buf.remaining() });
        }
        // For a non-degenerate model the size check above already bounds
        // `n_clients` by the image length; the `min` closes the
        // zero-param corner where `need == 0` would otherwise let a forged
        // header reserve an arbitrary amount up front.
        let mut client_masks = Vec::with_capacity(n_clients.min(data.len()));
        for _ in 0..n_clients {
            let (raw, rest) = buf
                .split_at_checked(mask_len)
                .ok_or(CheckpointError::TruncatedMask { needed: mask_len, got: buf.remaining() })?;
            client_masks.push(subfed_metrics::comm::unpack_mask(raw, n_params));
            buf = rest;
        }
        Ok(Self { round, global, client_masks })
    }

    /// Persists the encoded checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the file cannot be written.
    #[must_use = "a dropped Result hides the write failure it reports"]
    pub fn write_to(&self, path: &std::path::Path) -> Result<(), CheckpointError> {
        std::fs::write(path, self.encode()).map_err(CheckpointError::Io)
    }

    /// Restores a checkpoint file written by [`Checkpoint::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the file cannot be read,
    /// otherwise whatever [`Checkpoint::decode`] reports about the image.
    #[must_use = "a dropped Result hides the checkpoint corruption it reports"]
    pub fn read_from(path: &std::path::Path) -> Result<Self, CheckpointError> {
        Self::decode(&std::fs::read(path).map_err(CheckpointError::Io)?)
    }

    /// Size of the encoded checkpoint without building it.
    pub fn encoded_len(num_params: usize, num_clients: usize) -> u64 {
        16 + 4 * num_params as u64
            + num_clients as u64 * subfed_metrics::comm::mask_bytes(num_params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Checkpoint {
        let global: Vec<f32> = (0..21).map(|i| i as f32 * 0.25 - 2.0).collect();
        let client_masks: Vec<Vec<f32>> = (0..3)
            .map(|k| (0..21).map(|i| if (i + k) % 2 == 0 { 1.0 } else { 0.0 }).collect())
            .collect();
        Checkpoint { round: 17, global, client_masks }
    }

    #[test]
    fn roundtrip() {
        let c = example();
        let buf = c.encode();
        assert_eq!(buf.len() as u64, Checkpoint::encoded_len(21, 3));
        let back = Checkpoint::decode(&buf).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn empty_federation_roundtrip() {
        let c = Checkpoint { round: 0, global: vec![], client_masks: vec![] };
        let back = Checkpoint::decode(&c.encode()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn corruption_detected() {
        let err = |r: Result<Checkpoint, CheckpointError>| r.unwrap_err().to_string();
        let buf = example().encode();
        assert!(err(Checkpoint::decode(&buf[..8])).contains("truncated checkpoint"));
        assert!(err(Checkpoint::decode(&buf[..buf.len() - 1])).contains("truncated client mask"));
        let mut bad = buf.clone();
        bad[0] ^= 0x55;
        assert!(err(Checkpoint::decode(&bad)).contains("bad checkpoint magic"));
        let mut short = buf.clone();
        short.truncate(20);
        assert!(err(Checkpoint::decode(&short)).contains("truncated global"));
    }

    #[test]
    fn write_read_roundtrip_on_disk() {
        let c = example();
        let path = std::env::temp_dir().join("subfed_checkpoint_roundtrip.sbfc");
        c.write_to(&path).expect("write checkpoint");
        let back = Checkpoint::read_from(&path).expect("read checkpoint");
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, c);
    }

    #[test]
    fn read_from_missing_file_is_io_error() {
        let path = std::env::temp_dir().join("subfed_checkpoint_does_not_exist.sbfc");
        let err = Checkpoint::read_from(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_mask_rejected() {
        let mut c = example();
        c.client_masks[0].pop();
        let _ = c.encode();
    }

    #[test]
    fn resume_reproduces_training_state() {
        // Save a mid-run state, restore it, and verify the restored global
        // and masks drive the same evaluation results.
        use crate::tests_support::tiny_federation;
        use crate::{flatten_mask, FederatedAlgorithm};
        use subfed_pruning::UnstructuredController;

        let fed = tiny_federation(3, 4);
        let mut controller = UnstructuredController::paper_defaults(0.5);
        controller.acc_threshold = 0.0;
        controller.rate = 0.2;
        let mut algo = crate::algorithms::SubFedAvgUn::with_controller(fed.clone(), controller);
        let _ = algo.run();
        let masks: Vec<Vec<f32>> = algo.final_masks().iter().map(flatten_mask).collect();
        let global = fed.init_global(); // any dense vector of the right size
        let ckpt = Checkpoint { round: 3, global: global.clone(), client_masks: masks.clone() };
        let restored = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(restored.global, global);
        assert_eq!(restored.client_masks, masks);
        assert_eq!(restored.round, 3);
    }
}
