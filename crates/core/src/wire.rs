//! Wire encoding of a Sub-FedAvg client update: the bit-packed mask plus
//! the kept parameters only.
//!
//! The byte layout (magic, reserved, count, packed mask, kept f32s), the
//! error taxonomy, and the exact relation to the
//! `subfed_metrics::comm` cost model are specified in
//! `docs/WIRE_FORMAT.md`. In short: the cost model charges
//! `32 bits × kept + 1 bit × |W|` (mask bits only in mask-changed
//! rounds); this module is the encoding that actually achieves those
//! numbers plus an 8-byte header, which the tests pin down — the
//! accounting is not hypothetical.

use bytes::{Buf, BufMut, BytesMut};
use subfed_metrics::comm::{mask_bytes, pack_mask, unpack_mask};

/// Wire-format version tag.
const MAGIC: u16 = 0x5FA1;

/// Encodes `(params, mask)` into the compact update message: header
/// (magic + parameter count), packed mask, then the kept parameters in
/// order.
///
/// # Panics
///
/// Panics if lengths differ or exceed `u32::MAX` entries.
pub fn encode_update(params: &[f32], mask: &[f32]) -> Vec<u8> {
    assert_eq!(params.len(), mask.len(), "params/mask length mismatch");
    assert!(params.len() <= u32::MAX as usize, "model too large for wire format");
    let kept = mask.iter().filter(|&&m| m != 0.0).count();
    let mut buf =
        BytesMut::with_capacity(8 + mask_bytes(mask.len()) as usize + 4 * kept);
    buf.put_u16_le(MAGIC);
    buf.put_u16_le(0); // reserved
    buf.put_u32_le(params.len() as u32);
    buf.extend_from_slice(&pack_mask(mask));
    for (&p, &m) in params.iter().zip(mask.iter()) {
        if m != 0.0 {
            buf.put_f32_le(p);
        }
    }
    buf.to_vec()
}

/// Decodes an update message back into `(full_params, mask)`, with zeros
/// at masked positions.
///
/// # Errors
///
/// Returns a message describing the corruption if the buffer is truncated
/// or carries a wrong magic tag.
pub fn decode_update(data: &[u8]) -> Result<(Vec<f32>, Vec<f32>), String> {
    let mut buf = data;
    if buf.remaining() < 8 {
        return Err("truncated header".into());
    }
    let magic = buf.get_u16_le();
    if magic != MAGIC {
        return Err(format!("bad magic {magic:#06x}"));
    }
    let _reserved = buf.get_u16_le();
    let len = buf.get_u32_le() as usize;
    let mb = mask_bytes(len) as usize;
    if buf.remaining() < mb {
        return Err("truncated mask".into());
    }
    let mask = unpack_mask(&buf[..mb], len);
    buf.advance(mb);
    let kept = mask.iter().filter(|&&m| m != 0.0).count();
    if buf.remaining() < 4 * kept {
        return Err("truncated parameters".into());
    }
    let mut params = vec![0.0f32; len];
    for (p, &m) in params.iter_mut().zip(mask.iter()) {
        if m != 0.0 {
            *p = buf.get_f32_le();
        }
    }
    Ok((params, mask))
}

/// Size in bytes of the encoded update, without building it.
pub fn encoded_len(num_params: usize, kept: usize) -> u64 {
    8 + mask_bytes(num_params) + 4 * kept as u64
}

/// Affine 8-bit quantisation of a dense parameter vector — the classic
/// *alternative* communication reducer the paper's related work cites
/// (Konečný et al.'s sketched updates, Lin et al.'s compression). Provided
/// so the extension experiments can compare mask-based compression
/// (Sub-FedAvg) against value quantisation on equal footing.
///
/// Layout: `min: f32`, `scale: f32`, then one byte per parameter.
pub fn encode_update_q8(params: &[f32]) -> Vec<u8> {
    let lo = params.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = params.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let (lo, hi) = if params.is_empty() { (0.0, 0.0) } else { (lo, hi) };
    let scale = if hi > lo { (hi - lo) / 255.0 } else { 0.0 };
    let mut buf = BytesMut::with_capacity(8 + params.len());
    buf.put_f32_le(lo);
    buf.put_f32_le(scale);
    for &p in params {
        let q = if scale > 0.0 { ((p - lo) / scale).round().clamp(0.0, 255.0) } else { 0.0 };
        buf.put_u8(q as u8);
    }
    buf.to_vec()
}

/// Decodes an 8-bit-quantised parameter vector of known length.
///
/// # Errors
///
/// Returns a description of the corruption on truncated input.
pub fn decode_update_q8(data: &[u8], len: usize) -> Result<Vec<f32>, String> {
    let mut buf = data;
    if buf.remaining() < 8 + len {
        return Err("truncated quantised update".into());
    }
    let lo = buf.get_f32_le();
    let scale = buf.get_f32_le();
    Ok((0..len).map(|_| lo + scale * buf.get_u8() as f32).collect())
}

/// Worst-case absolute reconstruction error of [`encode_update_q8`] for a
/// value range `[lo, hi]`: half a quantisation step.
pub fn q8_max_error(lo: f32, hi: f32) -> f32 {
    if hi > lo {
        (hi - lo) / 255.0 / 2.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> (Vec<f32>, Vec<f32>) {
        let params: Vec<f32> = (0..37).map(|i| i as f32 * 0.5 - 3.0).collect();
        let mask: Vec<f32> = (0..37).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
        (params, mask)
    }

    #[test]
    fn roundtrip_recovers_kept_and_zeroes_pruned() {
        let (params, mask) = example();
        let buf = encode_update(&params, &mask);
        let (got_params, got_mask) = decode_update(&buf).unwrap();
        assert_eq!(got_mask, mask);
        for i in 0..params.len() {
            if mask[i] != 0.0 {
                assert_eq!(got_params[i], params[i]);
            } else {
                assert_eq!(got_params[i], 0.0);
            }
        }
    }

    #[test]
    fn length_matches_accounting() {
        let (params, mask) = example();
        let kept = mask.iter().filter(|&&m| m != 0.0).count();
        let buf = encode_update(&params, &mask);
        assert_eq!(buf.len() as u64, encoded_len(params.len(), kept));
        // Header is 8 bytes; the rest is exactly the comm model's charge.
        use subfed_metrics::comm::{mask_bytes, masked_transfer_bytes};
        assert_eq!(
            buf.len() as u64 - 8,
            masked_transfer_bytes(kept) + mask_bytes(params.len())
        );
    }

    #[test]
    fn full_mask_roundtrip() {
        let params = vec![1.5f32, -2.0, 0.0, 7.25];
        let mask = vec![1.0f32; 4];
        let (got, gmask) = decode_update(&encode_update(&params, &mask)).unwrap();
        assert_eq!(got, params);
        assert_eq!(gmask, mask);
    }

    #[test]
    fn empty_mask_roundtrip() {
        let params = vec![1.0f32; 9];
        let mask = vec![0.0f32; 9];
        let buf = encode_update(&params, &mask);
        assert_eq!(buf.len() as u64, encoded_len(9, 0));
        let (got, gmask) = decode_update(&buf).unwrap();
        assert!(got.iter().all(|&v| v == 0.0));
        assert!(gmask.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn corrupted_inputs_are_rejected() {
        let (params, mask) = example();
        let buf = encode_update(&params, &mask);
        assert!(decode_update(&buf[..4]).unwrap_err().contains("truncated header"));
        assert!(decode_update(&buf[..buf.len() - 1])
            .unwrap_err()
            .contains("truncated parameters"));
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(decode_update(&bad).unwrap_err().contains("bad magic"));
        let mut short_mask = buf[..9].to_vec();
        short_mask.truncate(9);
        assert!(decode_update(&short_mask).unwrap_err().contains("truncated mask"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = encode_update(&[1.0], &[1.0, 0.0]);
    }

    #[test]
    fn q8_roundtrip_within_half_step() {
        let params: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin() * 2.5).collect();
        let buf = encode_update_q8(&params);
        assert_eq!(buf.len(), 8 + 100);
        let back = decode_update_q8(&buf, 100).unwrap();
        let lo = params.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = params.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let bound = q8_max_error(lo, hi) + 1e-6;
        for (a, b) in params.iter().zip(back.iter()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} exceeds {bound}");
        }
    }

    #[test]
    fn q8_constant_vector_is_exact() {
        let params = vec![3.25f32; 17];
        let back = decode_update_q8(&encode_update_q8(&params), 17).unwrap();
        assert_eq!(back, params);
    }

    #[test]
    fn q8_empty_and_truncation() {
        let buf = encode_update_q8(&[]);
        assert_eq!(decode_update_q8(&buf, 0).unwrap(), Vec::<f32>::new());
        assert!(decode_update_q8(&buf, 1).unwrap_err().contains("truncated"));
    }

    #[test]
    fn q8_is_4x_smaller_than_dense_float() {
        let n = 62_000usize; // paper-scale LeNet-5
        let params = vec![0.5f32; n];
        let q = encode_update_q8(&params).len() as f64;
        let dense = (n * 4) as f64;
        assert!((dense / q - 4.0).abs() < 0.01, "compression ratio {}", dense / q);
    }
}
