//! Wire encoding of a Sub-FedAvg client update: the bit-packed mask plus
//! the kept parameters only.
//!
//! The byte layout (magic, reserved, count, packed mask, kept f32s), the
//! error taxonomy, and the exact relation to the
//! `subfed_metrics::comm` cost model are specified in
//! `docs/WIRE_FORMAT.md`. In short: the cost model charges
//! `32 bits × kept + 1 bit × |W|` (mask bits only in mask-changed
//! rounds); this module is the encoding that actually achieves those
//! numbers plus an 8-byte header, which the tests pin down — the
//! accounting is not hypothetical.

use bytes::{Buf, BufMut, BytesMut};
use subfed_metrics::comm::{mask_bytes, pack_mask, unpack_mask};
use subfed_nn::is_kept;

/// Wire-format version tag.
const MAGIC: u16 = 0x5FA1;

/// Typed decoding error for wire messages: every way a payload can be
/// malformed, so one client's corrupt upload is a reportable event instead
/// of a server panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the 8-byte header requires.
    TruncatedHeader {
        /// Bytes actually present.
        got: usize,
    },
    /// The magic tag does not identify this wire format.
    BadMagic {
        /// Tag found in the header.
        got: u16,
    },
    /// The packed mask is shorter than the header's parameter count implies.
    TruncatedMask {
        /// Mask bytes the header promises.
        needed: usize,
        /// Bytes actually present after the header.
        got: usize,
    },
    /// Fewer kept-parameter floats than the mask keeps.
    TruncatedParams {
        /// Bytes of kept parameters the mask promises.
        needed: usize,
        /// Bytes actually present after the mask.
        got: usize,
    },
    /// A quantised update shorter than its header plus payload.
    TruncatedQuantised {
        /// Bytes required for the requested length.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The mask keeps more positions than the header's parameter count —
    /// structurally impossible for an honest encoder, so the frame is
    /// forged or corrupt.
    KeptExceedsParams {
        /// Positions the decoded mask keeps.
        kept: usize,
        /// Parameter count the header declares.
        num_params: usize,
    },
    /// A size computation on header-supplied lengths exceeds the
    /// platform's address range; honouring it would wrap and
    /// under-allocate.
    LengthOverflow,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TruncatedHeader { got } => {
                write!(f, "truncated header: need 8 bytes, got {got}")
            }
            WireError::BadMagic { got } => write!(f, "bad magic {got:#06x}"),
            WireError::TruncatedMask { needed, got } => {
                write!(f, "truncated mask: need {needed} bytes, got {got}")
            }
            WireError::TruncatedParams { needed, got } => {
                write!(f, "truncated parameters: need {needed} bytes, got {got}")
            }
            WireError::TruncatedQuantised { needed, got } => {
                write!(f, "truncated quantised update: need {needed} bytes, got {got}")
            }
            WireError::KeptExceedsParams { kept, num_params } => {
                write!(f, "mask keeps {kept} positions but header declares {num_params} params")
            }
            WireError::LengthOverflow => {
                write!(f, "header-declared lengths overflow the platform's address range")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes `(params, mask)` into the compact update message: header
/// (magic + parameter count), packed mask, then the kept parameters in
/// order.
///
/// # Panics
///
/// Panics if lengths differ or exceed `u32::MAX` entries.
pub fn encode_update(params: &[f32], mask: &[f32]) -> Vec<u8> {
    assert_eq!(params.len(), mask.len(), "params/mask length mismatch");
    assert!(params.len() <= u32::MAX as usize, "model too large for wire format");
    let kept = mask.iter().filter(|&&m| is_kept(m)).count();
    let mut buf = BytesMut::with_capacity(8 + mask_bytes(mask.len()) as usize + 4 * kept);
    buf.put_u16_le(MAGIC);
    buf.put_u16_le(0); // reserved
    buf.put_u32_le(params.len() as u32);
    buf.extend_from_slice(&pack_mask(mask));
    for (&p, &m) in params.iter().zip(mask.iter()) {
        if is_kept(m) {
            buf.put_f32_le(p);
        }
    }
    buf.to_vec()
}

/// Decodes an update message back into `(full_params, mask)`, with zeros
/// at masked positions.
///
/// # Errors
///
/// Returns a [`WireError`] naming the corruption if the buffer is
/// truncated, carries a wrong magic tag, or declares lengths whose byte
/// math would overflow. Total by construction: no input byte sequence
/// panics or over-allocates (certified — see `CERTIFIED.json`).
#[must_use = "a dropped Result hides the wire corruption it reports"]
pub fn decode_update(data: &[u8]) -> Result<(Vec<f32>, Vec<f32>), WireError> {
    let mut buf = data;
    if buf.remaining() < 8 {
        return Err(WireError::TruncatedHeader { got: buf.remaining() });
    }
    let magic = buf.get_u16_le();
    if magic != MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let _reserved = buf.get_u16_le();
    let len = usize::try_from(buf.get_u32_le()).map_err(|_| WireError::LengthOverflow)?;
    let mb = usize::try_from(mask_bytes(len)).map_err(|_| WireError::LengthOverflow)?;
    let (mask_raw, rest) = buf
        .split_at_checked(mb)
        .ok_or(WireError::TruncatedMask { needed: mb, got: buf.remaining() })?;
    let mask = unpack_mask(mask_raw, len);
    buf = rest;
    let kept = mask.iter().filter(|&&m| is_kept(m)).count();
    // `kept <= len` holds for any mask `unpack_mask` can produce; the
    // guard is the adversarial backstop should the mask source change.
    if kept > len {
        return Err(WireError::KeptExceedsParams { kept, num_params: len });
    }
    let needed = kept.checked_mul(4).ok_or(WireError::LengthOverflow)?;
    if buf.remaining() < needed {
        return Err(WireError::TruncatedParams { needed, got: buf.remaining() });
    }
    // Bounded allocation: the mask-length check above caps `len` at
    // eight bits per remaining input byte, so a forged header cannot
    // demand more memory than ~8x the frame it arrived in.
    let mut params = vec![0.0f32; len];
    for (p, &m) in params.iter_mut().zip(mask.iter()) {
        if is_kept(m) {
            *p = buf.get_f32_le();
        }
    }
    Ok((params, mask))
}

/// Size in bytes of the encoded update, without building it.
pub fn encoded_len(num_params: usize, kept: usize) -> u64 {
    8 + mask_bytes(num_params) + 4 * kept as u64
}

/// Affine 8-bit quantisation of a dense parameter vector — the classic
/// *alternative* communication reducer the paper's related work cites
/// (Konečný et al.'s sketched updates, Lin et al.'s compression). Provided
/// so the extension experiments can compare mask-based compression
/// (Sub-FedAvg) against value quantisation on equal footing.
///
/// Layout: `min: f32`, `scale: f32`, then one byte per parameter.
pub fn encode_update_q8(params: &[f32]) -> Vec<u8> {
    let lo = params.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = params.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let (lo, hi) = if params.is_empty() { (0.0, 0.0) } else { (lo, hi) };
    let scale = if hi > lo { (hi - lo) / 255.0 } else { 0.0 };
    let mut buf = BytesMut::with_capacity(8 + params.len());
    buf.put_f32_le(lo);
    buf.put_f32_le(scale);
    for &p in params {
        let q = if scale > 0.0 { ((p - lo) / scale).round().clamp(0.0, 255.0) } else { 0.0 };
        buf.put_u8(q as u8);
    }
    buf.to_vec()
}

/// Decodes an 8-bit-quantised parameter vector of known length.
///
/// # Errors
///
/// Returns a [`WireError`] describing the corruption on truncated input.
#[must_use = "a dropped Result hides the wire corruption it reports"]
pub fn decode_update_q8(data: &[u8], len: usize) -> Result<Vec<f32>, WireError> {
    let mut buf = data;
    let needed = len.checked_add(8).ok_or(WireError::LengthOverflow)?;
    if buf.remaining() < needed {
        return Err(WireError::TruncatedQuantised { needed, got: buf.remaining() });
    }
    let lo = buf.get_f32_le();
    let scale = buf.get_f32_le();
    Ok((0..len).map(|_| lo + scale * buf.get_u8() as f32).collect())
}

/// Worst-case absolute reconstruction error of [`encode_update_q8`] for a
/// value range `[lo, hi]`: half a quantisation step.
pub fn q8_max_error(lo: f32, hi: f32) -> f32 {
    if hi > lo {
        (hi - lo) / 255.0 / 2.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> (Vec<f32>, Vec<f32>) {
        let params: Vec<f32> = (0..37).map(|i| i as f32 * 0.5 - 3.0).collect();
        let mask: Vec<f32> = (0..37).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
        (params, mask)
    }

    #[test]
    fn roundtrip_recovers_kept_and_zeroes_pruned() {
        let (params, mask) = example();
        let buf = encode_update(&params, &mask);
        let (got_params, got_mask) = decode_update(&buf).unwrap();
        assert_eq!(got_mask, mask);
        for i in 0..params.len() {
            if mask[i] != 0.0 {
                assert_eq!(got_params[i], params[i]);
            } else {
                assert_eq!(got_params[i], 0.0);
            }
        }
    }

    #[test]
    fn length_matches_accounting() {
        let (params, mask) = example();
        let kept = mask.iter().filter(|&&m| m != 0.0).count();
        let buf = encode_update(&params, &mask);
        assert_eq!(buf.len() as u64, encoded_len(params.len(), kept));
        // Header is 8 bytes; the rest is exactly the comm model's charge.
        use subfed_metrics::comm::{mask_bytes, masked_transfer_bytes};
        assert_eq!(buf.len() as u64 - 8, masked_transfer_bytes(kept) + mask_bytes(params.len()));
    }

    #[test]
    fn full_mask_roundtrip() {
        let params = vec![1.5f32, -2.0, 0.0, 7.25];
        let mask = vec![1.0f32; 4];
        let (got, gmask) = decode_update(&encode_update(&params, &mask)).unwrap();
        assert_eq!(got, params);
        assert_eq!(gmask, mask);
    }

    #[test]
    fn empty_mask_roundtrip() {
        let params = vec![1.0f32; 9];
        let mask = vec![0.0f32; 9];
        let buf = encode_update(&params, &mask);
        assert_eq!(buf.len() as u64, encoded_len(9, 0));
        let (got, gmask) = decode_update(&buf).unwrap();
        assert!(got.iter().all(|&v| v == 0.0));
        assert!(gmask.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn corrupted_inputs_are_rejected() {
        let (params, mask) = example();
        let buf = encode_update(&params, &mask);
        assert!(decode_update(&buf[..4]).unwrap_err().to_string().contains("truncated header"));
        assert!(decode_update(&buf[..buf.len() - 1])
            .unwrap_err()
            .to_string()
            .contains("truncated parameters"));
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(decode_update(&bad).unwrap_err().to_string().contains("bad magic"));
        let mut short_mask = buf[..9].to_vec();
        short_mask.truncate(9);
        assert!(decode_update(&short_mask).unwrap_err().to_string().contains("truncated mask"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = encode_update(&[1.0], &[1.0, 0.0]);
    }

    #[test]
    fn every_truncation_errors_without_panic() {
        let (params, mask) = example();
        let buf = encode_update(&params, &mask);
        // Every strict prefix must produce a typed error, never a panic —
        // one client's half-written upload must not abort the server.
        for cut in 0..buf.len() {
            let err =
                decode_update(&buf[..cut]).expect_err("prefix of {cut} bytes decoded successfully");
            match err {
                WireError::TruncatedHeader { got } => assert_eq!(got, cut),
                WireError::TruncatedMask { needed, got } => {
                    assert!(got < needed, "mask: got {got} >= needed {needed}")
                }
                WireError::TruncatedParams { needed, got } => {
                    assert!(got < needed, "params: got {got} >= needed {needed}")
                }
                other => panic!("unexpected error for truncation at {cut}: {other:?}"),
            }
        }
        // The full buffer still decodes.
        assert!(decode_update(&buf).is_ok());
    }

    #[test]
    fn corrupted_headers_error_without_panic() {
        let (params, mask) = example();
        let buf = encode_update(&params, &mask);
        // Flip every byte of the header in turn; decoding must return
        // Ok or Err, never panic, even when the length field lies.
        for i in 0..8.min(buf.len()) {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = buf.clone();
                bad[i] ^= flip;
                let _ = decode_update(&bad);
            }
        }
        // A length field promising more parameters than the payload holds
        // must be reported as truncation.
        let mut oversized = buf.clone();
        oversized[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_update(&oversized), Err(WireError::TruncatedMask { .. })));
    }

    #[test]
    fn q8_roundtrip_within_half_step() {
        let params: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin() * 2.5).collect();
        let buf = encode_update_q8(&params);
        assert_eq!(buf.len(), 8 + 100);
        let back = decode_update_q8(&buf, 100).unwrap();
        let lo = params.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = params.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let bound = q8_max_error(lo, hi) + 1e-6;
        for (a, b) in params.iter().zip(back.iter()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} exceeds {bound}");
        }
    }

    #[test]
    fn q8_constant_vector_is_exact() {
        let params = vec![3.25f32; 17];
        let back = decode_update_q8(&encode_update_q8(&params), 17).unwrap();
        assert_eq!(back, params);
    }

    #[test]
    fn q8_empty_and_truncation() {
        let buf = encode_update_q8(&[]);
        assert_eq!(decode_update_q8(&buf, 0).unwrap(), Vec::<f32>::new());
        assert!(decode_update_q8(&buf, 1).unwrap_err().to_string().contains("truncated"));
    }

    #[test]
    fn q8_is_4x_smaller_than_dense_float() {
        let n = 62_000usize; // paper-scale LeNet-5
        let params = vec![0.5f32; n];
        let q = encode_update_q8(&params).len() as f64;
        let dense = (n * 4) as f64;
        assert!((dense / q - 4.0).abs() < 0.01, "compression ratio {}", dense / q);
    }
}
