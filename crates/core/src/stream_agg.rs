//! Streaming Sub-FedAvg aggregation: fold uploads into running
//! `Σ mₖ·θₖ` / `Σ mₖ` accumulators instead of buffering the whole cohort.
//!
//! The batch rule ([`crate::aggregate::subfedavg_aggregate`]) takes every
//! `(params, mask)` pair at once — O(cohort × model) server memory, which
//! is exactly what a 10k-client cohort over a 62k-parameter model cannot
//! afford to keep dense. Intersection averaging, however, is a pure
//! position-wise fold: the server only ever needs the running masked sum
//! and the running holder count, 2 × model floats regardless of cohort
//! size. [`StreamingAccumulator`] is that fold; [`ShardedAccumulator`]
//! wraps it in contiguous position-range shards behind mutexes so training
//! workers fold their own upload on the way out instead of handing dense
//! vectors back to the server loop.
//!
//! Floating-point caveat: folding order follows upload arrival, so with
//! multiple worker threads the result can differ from the batch rule by
//! f32 rounding. The property tests bound the gap at 1e-6; see
//! `docs/SCALING.md` § "Numerical determinism".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use subfed_metrics::sync::{into_inner_unpoisoned, lock_unpoisoned};
use subfed_nn::is_kept;

/// Running position-wise Sub-FedAvg state: one masked sum and one holder
/// count per model position.
#[derive(Debug, Clone)]
pub struct StreamingAccumulator {
    sum: Vec<f32>,
    count: Vec<f32>,
    updates: usize,
}

impl StreamingAccumulator {
    /// An empty accumulator over a model of `num_params` positions.
    pub fn new(num_params: usize) -> Self {
        Self { sum: vec![0.0; num_params], count: vec![0.0; num_params], updates: 0 }
    }

    /// Folds one client upload: every kept position contributes its
    /// parameter to the sum and one holder to the count.
    ///
    /// # Panics
    ///
    /// Panics if `params` or `mask` length differs from the model.
    pub fn fold(&mut self, params: &[f32], mask: &[f32]) {
        assert_eq!(params.len(), self.sum.len(), "update length mismatch");
        assert_eq!(mask.len(), self.sum.len(), "mask length mismatch");
        for (((s, c), &p), &m) in
            self.sum.iter_mut().zip(self.count.iter_mut()).zip(params).zip(mask)
        {
            if is_kept(m) {
                *s += p;
                *c += 1.0;
            }
        }
        self.updates += 1;
    }

    /// Uploads folded so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Per-position holder counts (for coverage checks).
    pub fn counts(&self) -> &[f32] {
        &self.count
    }

    /// Closes the round: positions at least one client kept take the
    /// intersection mean, positions nobody kept retain the previous
    /// global — the same rule as the batch aggregator.
    ///
    /// # Panics
    ///
    /// Panics if `global` length differs, or nothing was folded.
    pub fn finish(&self, global: &[f32]) -> Vec<f32> {
        assert_eq!(global.len(), self.sum.len(), "global length mismatch");
        assert!(self.updates > 0, "streaming sub-fedavg over zero updates");
        self.sum
            .iter()
            .zip(self.count.iter())
            .zip(global)
            .map(|((&s, &c), &g)| if c > 0.0 { s / c } else { g })
            .collect()
    }

    /// Resident bytes — 2 × model × 4, independent of cohort size. The
    /// O(model) server-memory invariant `docs/SCALING.md` documents.
    pub fn memory_bytes(&self) -> usize {
        (self.sum.len() + self.count.len()) * std::mem::size_of::<f32>()
    }
}

/// One lock per contiguous position range.
#[derive(Debug)]
struct Shard {
    sum: Vec<f32>,
    count: Vec<f32>,
}

/// A [`StreamingAccumulator`] split into contiguous position-range shards,
/// each behind its own mutex, so concurrent training workers fold uploads
/// without serializing on one lock (workers touching different shards
/// proceed in parallel; a model is split into [`ShardedAccumulator::DEFAULT_SHARDS`]
/// ranges by default).
#[derive(Debug)]
pub struct ShardedAccumulator {
    shards: Vec<Mutex<Shard>>,
    /// Positions per shard (last shard may be short).
    shard_size: usize,
    num_params: usize,
    updates: AtomicUsize,
}

impl ShardedAccumulator {
    /// Default shard count — enough to keep 8–16 workers from contending.
    pub const DEFAULT_SHARDS: usize = 32;

    /// An empty sharded accumulator over `num_params` positions.
    ///
    /// # Panics
    ///
    /// Panics on an empty model or zero shards.
    pub fn new(num_params: usize, shards: usize) -> Self {
        assert!(num_params > 0, "accumulator needs a non-empty model");
        assert!(shards > 0, "need at least one shard");
        let shards = shards.min(num_params);
        let shard_size = num_params.div_ceil(shards);
        // Rounding can leave the last requested shards empty (e.g. 257
        // positions over 32 shards → 9-position shards → 29 used); only
        // materialize the ranges that actually hold positions.
        let shards = num_params.div_ceil(shard_size);
        let shards = (0..shards)
            .map(|i| {
                let lo = i * shard_size;
                let hi = ((i + 1) * shard_size).min(num_params);
                Mutex::new(Shard { sum: vec![0.0; hi - lo], count: vec![0.0; hi - lo] })
            })
            .collect();
        Self { shards, shard_size, num_params, updates: AtomicUsize::new(0) }
    }

    /// Folds one upload, locking each position-range shard in turn
    /// (ascending position order — the workspace's lock order for
    /// shards). Callable from any worker thread (`&self`).
    ///
    /// # Panics
    ///
    /// Panics if `params` or `mask` length differs from the model.
    pub fn fold(&self, params: &[f32], mask: &[f32]) {
        assert_eq!(params.len(), self.num_params, "update length mismatch");
        assert_eq!(mask.len(), self.num_params, "mask length mismatch");
        for (i, shard) in self.shards.iter().enumerate() {
            let lo = i * self.shard_size;
            let hi = ((i + 1) * self.shard_size).min(self.num_params);
            // Poison-tolerant by policy: shard sums stay valid even if a
            // sibling worker panicked, and that panic re-raises at join.
            let mut guard = lock_unpoisoned(shard);
            let Shard { sum, count } = &mut *guard;
            // lint: allow(unchecked-index) — lo..hi lies in 0..num_params by shard construction
            let (ps, ms) = (&params[lo..hi], &mask[lo..hi]);
            for (((s, c), &p), &m) in sum.iter_mut().zip(count.iter_mut()).zip(ps).zip(ms) {
                if is_kept(m) {
                    *s += p;
                    *c += 1.0;
                }
            }
        }
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Uploads folded so far.
    pub fn updates(&self) -> usize {
        self.updates.load(Ordering::Relaxed)
    }

    /// Collapses the shards back into one [`StreamingAccumulator`] (after
    /// the round's workers have joined).
    pub fn into_streaming(self) -> StreamingAccumulator {
        let updates = self.updates.load(Ordering::Relaxed);
        let mut sum = Vec::with_capacity(self.num_params);
        let mut count = Vec::with_capacity(self.num_params);
        for shard in self.shards {
            let inner = into_inner_unpoisoned(shard);
            sum.extend_from_slice(&inner.sum);
            count.extend_from_slice(&inner.count);
        }
        StreamingAccumulator { sum, count, updates }
    }

    /// Resident bytes across all shards — still 2 × model × 4.
    pub fn memory_bytes(&self) -> usize {
        2 * self.num_params * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::subfedavg_aggregate;
    use subfed_tensor::init::SeededRng;

    fn random_cohort(rng: &mut SeededRng, n: usize, len: usize) -> Vec<(Vec<f32>, Vec<f32>)> {
        (0..n)
            .map(|_| {
                let params: Vec<f32> = (0..len).map(|_| rng.uniform_f32(-2.0, 2.0)).collect();
                let mask: Vec<f32> = (0..len)
                    .map(|_| if rng.uniform_f32(0.0, 1.0) < 0.6 { 1.0 } else { 0.0 })
                    .collect();
                (params, mask)
            })
            .collect()
    }

    #[test]
    fn streaming_matches_batch_aggregation() {
        // Property: across random cohorts/masks/sizes, folding upload-by-
        // upload lands within 1e-6 of the batch oracle at every position.
        let mut rng = SeededRng::new(99);
        for case in 0..25 {
            let len = 1 + (case * 37) % 400;
            let cohort = 1 + case % 12;
            let global: Vec<f32> = (0..len).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
            let updates = random_cohort(&mut rng, cohort, len);
            let batch = subfedavg_aggregate(&global, &updates);
            let mut acc = StreamingAccumulator::new(len);
            for (p, m) in &updates {
                acc.fold(p, m);
            }
            let streamed = acc.finish(&global);
            assert_eq!(acc.updates(), cohort);
            for (i, (a, b)) in batch.iter().zip(&streamed).enumerate() {
                assert!((a - b).abs() <= 1e-6, "case {case} position {i}: batch {a} vs stream {b}");
            }
        }
    }

    #[test]
    fn sharded_matches_batch_aggregation() {
        let mut rng = SeededRng::new(7);
        for &shards in &[1usize, 3, 32, 1000] {
            let len = 257;
            let global: Vec<f32> = (0..len).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
            let updates = random_cohort(&mut rng, 9, len);
            let batch = subfedavg_aggregate(&global, &updates);
            let acc = ShardedAccumulator::new(len, shards);
            for (p, m) in &updates {
                acc.fold(p, m);
            }
            assert_eq!(acc.updates(), 9);
            let streamed = acc.into_streaming().finish(&global);
            for (a, b) in batch.iter().zip(&streamed) {
                assert!((a - b).abs() <= 1e-6, "shards={shards}: batch {a} vs stream {b}");
            }
        }
    }

    #[test]
    fn concurrent_folds_land_within_tolerance() {
        let len = 512;
        let mut rng = SeededRng::new(13);
        let global: Vec<f32> = (0..len).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
        let updates = random_cohort(&mut rng, 24, len);
        let batch = subfedavg_aggregate(&global, &updates);
        let acc = ShardedAccumulator::new(len, ShardedAccumulator::DEFAULT_SHARDS);
        crossbeam::thread::scope(|s| {
            for chunk in updates.chunks(6) {
                let acc = &acc;
                s.spawn(move |_| {
                    for (p, m) in chunk {
                        acc.fold(p, m);
                    }
                });
            }
        })
        .expect("workers join");
        assert_eq!(acc.updates(), 24);
        let streamed = acc.into_streaming().finish(&global);
        for (a, b) in batch.iter().zip(&streamed) {
            assert!((a - b).abs() <= 1e-6, "batch {a} vs concurrent stream {b}");
        }
    }

    #[test]
    fn uncovered_positions_keep_previous_global() {
        let global = vec![5.0, -3.0, 0.5];
        let mut acc = StreamingAccumulator::new(3);
        acc.fold(&[1.0, 9.0, 2.0], &[1.0, 0.0, 1.0]);
        acc.fold(&[3.0, 9.0, 4.0], &[1.0, 0.0, 0.0]);
        let out = acc.finish(&global);
        assert_eq!(out, vec![2.0, -3.0, 2.0]);
        assert_eq!(acc.counts()[1], 0.0);
    }

    #[test]
    fn memory_is_o_model_not_o_cohort() {
        let len = 1000;
        let mut acc = StreamingAccumulator::new(len);
        let before = acc.memory_bytes();
        let ones = vec![1.0; len];
        for _ in 0..100 {
            acc.fold(&ones, &ones);
        }
        assert_eq!(acc.memory_bytes(), before, "folding must not grow the accumulator");
        assert_eq!(before, 2 * len * 4);
    }

    #[test]
    #[should_panic(expected = "zero updates")]
    fn finish_without_updates_panics() {
        let _ = StreamingAccumulator::new(4).finish(&[0.0; 4]);
    }
}
