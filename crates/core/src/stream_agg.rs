//! Streaming Sub-FedAvg aggregation: fold uploads into running
//! `Σ mₖ·θₖ` / `Σ mₖ` accumulators instead of buffering the whole cohort.
//!
//! The batch rule ([`crate::aggregate::subfedavg_aggregate`]) takes every
//! `(params, mask)` pair at once — O(cohort × model) server memory, which
//! is exactly what a 10k-client cohort over a 62k-parameter model cannot
//! afford to keep dense. Intersection averaging, however, is a pure
//! position-wise fold: the server only ever needs the running masked sum
//! and the running holder count, 2 × model floats regardless of cohort
//! size. [`StreamingAccumulator`] is that fold; [`OrderedAccumulator`]
//! wraps it in a cohort-slot reorder window so concurrent training
//! workers fold their own upload on the way out *in a deterministic
//! order* instead of handing dense vectors back to the server loop.
//!
//! Determinism contract: f32 addition is not associative, so the folded
//! result is only reproducible if the fold order is fixed. The reorder
//! window folds uploads in cohort-slot order (the sampled cohort sorted
//! by client id) no matter which worker finishes first, which makes the
//! streamed aggregate **bit-identical** to the batch oracle and across
//! thread counts. The property tests assert exact equality; the
//! `order-sensitive-fold` rule of `subfed-lint analyze` rejects any
//! arrival-order fold that sneaks back in. See `docs/SCALING.md`
//! § "Numerical determinism".

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use subfed_metrics::sync::{into_inner_unpoisoned, lock_unpoisoned, wait_unpoisoned};
use subfed_nn::is_kept;

/// Typed rejection for a malformed or replayed upload: the aggregation
/// spine is a certified-total entry point (`TOTAL_ENTRIES` in
/// `subfed-lint`), so a bad fold is a reportable per-client event, never
/// a server panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggError {
    /// An upload vector's length differs from the model.
    LengthMismatch {
        /// Which vector was wrong (`"params"`, `"mask"`).
        what: &'static str,
        /// Length the upload carried.
        got: usize,
        /// Length the model requires.
        want: usize,
    },
    /// The cohort slot was already folded (or parked) this round.
    SlotReplayed {
        /// The offending slot.
        slot: usize,
    },
}

impl std::fmt::Display for AggError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggError::LengthMismatch { what, got, want } => {
                write!(f, "{what} length {got} does not match model length {want}")
            }
            AggError::SlotReplayed { slot } => {
                write!(f, "cohort slot {slot} folded twice")
            }
        }
    }
}

impl std::error::Error for AggError {}

/// Running position-wise Sub-FedAvg state: one masked sum and one holder
/// count per model position.
#[derive(Debug, Clone)]
pub struct StreamingAccumulator {
    sum: Vec<f32>,
    count: Vec<f32>,
    updates: usize,
}

impl StreamingAccumulator {
    /// An empty accumulator over a model of `num_params` positions.
    pub fn new(num_params: usize) -> Self {
        Self { sum: vec![0.0; num_params], count: vec![0.0; num_params], updates: 0 }
    }

    /// Folds one client upload: every kept position contributes its
    /// parameter to the sum and one holder to the count.
    ///
    /// # Errors
    ///
    /// Returns [`AggError::LengthMismatch`] — and folds nothing — if
    /// `params` or `mask` length differs from the model.
    #[must_use = "a dropped Result hides the rejected upload it reports"]
    pub fn fold(&mut self, params: &[f32], mask: &[f32]) -> Result<(), AggError> {
        let want = self.sum.len();
        if params.len() != want {
            return Err(AggError::LengthMismatch { what: "params", got: params.len(), want });
        }
        if mask.len() != want {
            return Err(AggError::LengthMismatch { what: "mask", got: mask.len(), want });
        }
        for (((s, c), &p), &m) in
            self.sum.iter_mut().zip(self.count.iter_mut()).zip(params).zip(mask)
        {
            if is_kept(m) {
                *s += p;
                *c += 1.0;
            }
        }
        self.updates += 1;
        Ok(())
    }

    /// Uploads folded so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Per-position holder counts (for coverage checks).
    pub fn counts(&self) -> &[f32] {
        &self.count
    }

    /// Closes the round: positions at least one client kept take the
    /// intersection mean, positions nobody kept retain the previous
    /// global — the same rule as the batch aggregator.
    ///
    /// # Panics
    ///
    /// Panics if `global` length differs, or nothing was folded.
    pub fn finish(&self, global: &[f32]) -> Vec<f32> {
        assert_eq!(global.len(), self.sum.len(), "global length mismatch");
        assert!(self.updates > 0, "streaming sub-fedavg over zero updates");
        self.sum
            .iter()
            .zip(self.count.iter())
            .zip(global)
            .map(|((&s, &c), &g)| if c > 0.0 { s / c } else { g })
            .collect()
    }

    /// Resident bytes — 2 × model × 4, independent of cohort size. The
    /// O(model) server-memory invariant `docs/SCALING.md` documents.
    pub fn memory_bytes(&self) -> usize {
        (self.sum.len() + self.count.len()) * std::mem::size_of::<f32>()
    }
}

/// Shared reorder state: the running fold plus the uploads that arrived
/// ahead of their turn.
#[derive(Debug)]
struct OrderedState {
    acc: StreamingAccumulator,
    /// The cohort slot the fold will consume next.
    next: usize,
    /// Early arrivals, keyed by cohort slot (all keys are `> next`).
    pending: BTreeMap<usize, (Vec<f32>, Vec<f32>)>,
}

/// A [`StreamingAccumulator`] behind a cohort-slot turnstile: concurrent
/// workers hand in uploads tagged with their slot (the position of the
/// client in the round's id-sorted cohort), and the accumulator folds
/// them in slot order regardless of arrival order. The result is
/// bit-identical to folding the cohort sequentially — and therefore to
/// the batch oracle — at any thread count.
///
/// Memory stays O(model): the running fold is 2 × model floats, and the
/// reorder window parks at most `window` early uploads (one per worker
/// under the strided schedule [`crate::engine::Federation::par_map`]
/// uses), independent of cohort size.
///
/// Progress: a worker whose upload is not yet due parks it (window
/// permitting) and moves on, or blocks on the turnstile when the window
/// is full. As long as each worker hands in its own slots in increasing
/// order — which the strided schedule guarantees — the worker owning the
/// due slot never blocks, so the fold always advances.
#[derive(Debug)]
pub struct OrderedAccumulator {
    state: Mutex<OrderedState>,
    turn: Condvar,
    num_params: usize,
    window: usize,
}

impl OrderedAccumulator {
    /// An empty ordered accumulator over `num_params` positions with a
    /// reorder window of `window` early uploads (use the worker count).
    ///
    /// # Panics
    ///
    /// Panics on an empty model or a zero-sized window.
    pub fn new(num_params: usize, window: usize) -> Self {
        assert!(num_params > 0, "accumulator needs a non-empty model");
        assert!(window > 0, "reorder window needs at least one slot");
        let state = OrderedState {
            acc: StreamingAccumulator::new(num_params),
            next: 0,
            pending: BTreeMap::new(),
        };
        Self { state: Mutex::new(state), turn: Condvar::new(), num_params, window }
    }

    /// Folds the upload for cohort slot `slot`, taking ownership so early
    /// arrivals can be parked without copying under the lock.
    ///
    /// Folds happen in ascending slot order: an on-time upload folds
    /// immediately and drains any consecutive parked successors; an
    /// upload at most `window` slots ahead of the turn parks in the
    /// reorder window; anything further ahead blocks until the turn
    /// catches up. Callable from any worker thread (`&self`).
    ///
    /// # Errors
    ///
    /// Returns [`AggError::LengthMismatch`] if `params` or `mask` length
    /// differs from the model, or [`AggError::SlotReplayed`] if `slot`
    /// was already folded or parked. Rejected uploads fold nothing and
    /// leave the turnstile state untouched, so the round can continue
    /// without the offending client.
    #[must_use = "a dropped Result hides the rejected upload it reports"]
    pub fn fold(&self, slot: usize, params: Vec<f32>, mask: Vec<f32>) -> Result<(), AggError> {
        let want = self.num_params;
        if params.len() != want {
            return Err(AggError::LengthMismatch { what: "params", got: params.len(), want });
        }
        if mask.len() != want {
            return Err(AggError::LengthMismatch { what: "mask", got: mask.len(), want });
        }
        // Poison-tolerant by policy: the running sums stay valid even if
        // a sibling worker panicked, and that panic re-raises at join.
        let mut st = lock_unpoisoned(&self.state);
        loop {
            if slot == st.next {
                // Lengths were validated against the same `num_params`
                // the inner accumulator was built with, so the inner
                // folds cannot fail; `?` keeps the proof local.
                st.acc.fold(&params, &mask)?;
                st.next += 1;
                while let Some((p, m)) = {
                    let due = st.next;
                    st.pending.remove(&due)
                } {
                    st.acc.fold(&p, &m)?;
                    st.next += 1;
                }
                self.turn.notify_all();
                return Ok(());
            }
            if slot < st.next || st.pending.contains_key(&slot) {
                return Err(AggError::SlotReplayed { slot });
            }
            // Distance-based window: parked keys live in
            // `(next, next + window]`, so at most `window` uploads are
            // ever resident beyond the running sums.
            if slot - st.next <= self.window {
                st.pending.insert(slot, (params, mask));
                return Ok(());
            }
            st = wait_unpoisoned(&self.turn, st);
        }
    }

    /// Uploads folded so far (excludes parked early arrivals).
    pub fn updates(&self) -> usize {
        lock_unpoisoned(&self.state).acc.updates()
    }

    /// Collapses the turnstile back into the plain
    /// [`StreamingAccumulator`] (after the round's workers have joined).
    ///
    /// # Panics
    ///
    /// Panics if uploads are still parked in the reorder window — that
    /// means a slot was never handed in and the fold is incomplete.
    pub fn into_streaming(self) -> StreamingAccumulator {
        let st = into_inner_unpoisoned(self.state);
        assert!(
            st.pending.is_empty(),
            "ordered fold torn down with {} uploads still parked",
            st.pending.len()
        );
        st.acc
    }

    /// Resident bytes right now: the running fold (2 × model × 4) plus
    /// whatever the reorder window currently parks. Empty between rounds,
    /// and bounded by `window` uploads — not cohort size — within one.
    pub fn memory_bytes(&self) -> usize {
        let st = lock_unpoisoned(&self.state);
        st.acc.memory_bytes() + st.pending.len() * 2 * self.num_params * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::subfedavg_aggregate;
    use subfed_tensor::init::SeededRng;

    fn random_cohort(rng: &mut SeededRng, n: usize, len: usize) -> Vec<(Vec<f32>, Vec<f32>)> {
        (0..n)
            .map(|_| {
                let params: Vec<f32> = (0..len).map(|_| rng.uniform_f32(-2.0, 2.0)).collect();
                let mask: Vec<f32> = (0..len)
                    .map(|_| if rng.uniform_f32(0.0, 1.0) < 0.6 { 1.0 } else { 0.0 })
                    .collect();
                (params, mask)
            })
            .collect()
    }

    #[test]
    fn streaming_is_bit_identical_to_batch_aggregation() {
        // Property: across random cohorts/masks/sizes, folding upload-by-
        // upload in cohort order reproduces the batch oracle *exactly* —
        // both perform the same f32 additions in the same order.
        let mut rng = SeededRng::new(99);
        for case in 0..25 {
            let len = 1 + (case * 37) % 400;
            let cohort = 1 + case % 12;
            let global: Vec<f32> = (0..len).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
            let updates = random_cohort(&mut rng, cohort, len);
            let batch = subfedavg_aggregate(&global, &updates);
            let mut acc = StreamingAccumulator::new(len);
            for (p, m) in &updates {
                acc.fold(p, m).unwrap();
            }
            let streamed = acc.finish(&global);
            assert_eq!(acc.updates(), cohort);
            assert_eq!(batch, streamed, "case {case}: stream must match batch bit-for-bit");
        }
    }

    #[test]
    fn permuted_arrival_is_bit_identical_to_batch_aggregation() {
        // Uploads arrive in a scrambled order; the reorder window must
        // still fold them in slot order, bit-identical to the oracle.
        let mut rng = SeededRng::new(7);
        for case in 0..10 {
            let len = 257;
            let cohort = 9;
            let global: Vec<f32> = (0..len).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
            let updates = random_cohort(&mut rng, cohort, len);
            let batch = subfedavg_aggregate(&global, &updates);
            let mut arrival: Vec<usize> = (0..cohort).collect();
            rng.shuffle(&mut arrival);
            // Window = cohort so the scrambled single-threaded feed never
            // blocks on the turnstile.
            let acc = OrderedAccumulator::new(len, cohort);
            for &slot in &arrival {
                let (p, m) = updates[slot].clone();
                acc.fold(slot, p, m).unwrap();
            }
            assert_eq!(acc.updates(), cohort);
            let streamed = acc.into_streaming().finish(&global);
            assert_eq!(batch, streamed, "case {case}: permuted arrival must not change bits");
        }
    }

    #[test]
    fn concurrent_folds_are_bit_identical_across_thread_counts() {
        // The acceptance property: the streamed aggregate equals the
        // batch oracle bit-for-bit at every thread count, with workers
        // racing under the same strided slot schedule `par_map` uses.
        let len = 512;
        let mut rng = SeededRng::new(13);
        let global: Vec<f32> = (0..len).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
        let updates = random_cohort(&mut rng, 24, len);
        let batch = subfedavg_aggregate(&global, &updates);
        for &threads in &[2usize, 3, 5, 8] {
            let acc = OrderedAccumulator::new(len, threads);
            crossbeam::thread::scope(|s| {
                for w in 0..threads {
                    let acc = &acc;
                    let updates = &updates;
                    s.spawn(move |_| {
                        // Strided schedule: worker `w` owns slots w, w+T,
                        // w+2T, … and hands them in ascending — the
                        // precondition for turnstile progress.
                        for slot in (w..updates.len()).step_by(threads) {
                            let (p, m) = updates[slot].clone();
                            acc.fold(slot, p, m).unwrap();
                        }
                    });
                }
            })
            .expect("workers join");
            assert_eq!(acc.updates(), 24);
            let streamed = acc.into_streaming().finish(&global);
            assert_eq!(batch, streamed, "threads={threads}: aggregate must be bit-identical");
        }
    }

    #[test]
    fn uncovered_positions_keep_previous_global() {
        let global = vec![5.0, -3.0, 0.5];
        let mut acc = StreamingAccumulator::new(3);
        acc.fold(&[1.0, 9.0, 2.0], &[1.0, 0.0, 1.0]).unwrap();
        acc.fold(&[3.0, 9.0, 4.0], &[1.0, 0.0, 0.0]).unwrap();
        let out = acc.finish(&global);
        assert_eq!(out, vec![2.0, -3.0, 2.0]);
        assert_eq!(acc.counts()[1], 0.0);
    }

    #[test]
    fn memory_is_o_model_not_o_cohort() {
        let len = 1000;
        let mut acc = StreamingAccumulator::new(len);
        let before = acc.memory_bytes();
        let ones = vec![1.0; len];
        for _ in 0..100 {
            acc.fold(&ones, &ones).unwrap();
        }
        assert_eq!(acc.memory_bytes(), before, "folding must not grow the accumulator");
        assert_eq!(before, 2 * len * 4);

        // The ordered wrapper reports the same steady state once the
        // window drains: on-time folds never park.
        let acc = OrderedAccumulator::new(len, 4);
        for slot in 0..100 {
            acc.fold(slot, ones.clone(), ones.clone()).unwrap();
        }
        assert_eq!(acc.memory_bytes(), 2 * len * 4);
    }

    #[test]
    #[should_panic(expected = "zero updates")]
    fn finish_without_updates_panics() {
        let _ = StreamingAccumulator::new(4).finish(&[0.0; 4]);
    }

    #[test]
    fn refolding_a_slot_is_rejected_not_folded() {
        let acc = OrderedAccumulator::new(2, 2);
        acc.fold(0, vec![1.0, 1.0], vec![1.0, 1.0]).unwrap();
        let err = acc.fold(0, vec![2.0, 2.0], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(err, AggError::SlotReplayed { slot: 0 });
        // A replay parked in the window is caught too, and neither copy
        // corrupts the fold: slot 1 parks, then arrives again.
        acc.fold(2, vec![5.0, 5.0], vec![1.0, 1.0]).unwrap();
        let err = acc.fold(2, vec![6.0, 6.0], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(err, AggError::SlotReplayed { slot: 2 });
        acc.fold(1, vec![3.0, 3.0], vec![1.0, 1.0]).unwrap();
        assert_eq!(acc.updates(), 3);
    }

    #[test]
    fn mismatched_upload_is_rejected_not_folded() {
        let mut acc = StreamingAccumulator::new(3);
        let err = acc.fold(&[1.0], &[1.0, 1.0, 1.0]).unwrap_err();
        assert_eq!(err, AggError::LengthMismatch { what: "params", got: 1, want: 3 });
        let ordered = OrderedAccumulator::new(3, 1);
        let err = ordered.fold(0, vec![1.0; 3], vec![1.0; 2]).unwrap_err();
        assert_eq!(err, AggError::LengthMismatch { what: "mask", got: 2, want: 3 });
        assert_eq!(ordered.updates(), 0, "a rejected upload must fold nothing");
    }
}
