//! Runtime invariant checks for the federation's trust boundaries.
//!
//! The static side of this PR (`subfed-lint`) proves the *code* avoids
//! hazard patterns; this module checks the *data* at the three boundaries
//! where masks and updates cross between client and server:
//!
//! - **decode** — a wire-decoded update must have the expected length and
//!   a strictly binary mask (`wire.rs` boundary),
//! - **gate** — the pruning decision's inputs must live in their domains:
//!   finite validation accuracy, Hamming Δ in `[0, 1]`
//!   (`controller.rs` boundary),
//! - **aggregate** — intersection averaging over a non-empty cohort must
//!   cover at least one position, otherwise the round is a silent no-op
//!   (`aggregate.rs` boundary).
//!
//! The check functions are pure, always compiled, and unit-testable. The
//! [`enforce_with`] wrapper is the debug-assert layer: it evaluates the
//! check **only in debug builds** (release builds skip even the closure),
//! and on violation emits a [`TraceEvent::Invariant`] through the run's
//! tracer — so the JSONL trace records what the federation saw — before
//! panicking. Use [`report`] for the non-panicking variant.

use std::fmt;
use subfed_metrics::trace::{TraceEvent, Tracer};

/// A violated runtime invariant, with the measurements that violated it.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// A decoded parameter vector has the wrong length for the model.
    UpdateLengthMismatch {
        /// The model's flat parameter count.
        expected: usize,
        /// The decoded update's length.
        got: usize,
    },
    /// A decoded mask has the wrong length for the model.
    MaskLengthMismatch {
        /// The model's flat parameter count.
        expected: usize,
        /// The decoded mask's length.
        got: usize,
    },
    /// A mask entry is neither exactly `0.0` nor exactly `1.0`.
    MaskNotBinary {
        /// Position of the first offending entry.
        index: usize,
        /// Its value.
        value: f32,
    },
    /// A Hamming distance Δ left its `[0, 1]` domain (or is non-finite).
    HammingOutOfDomain {
        /// The measured distance.
        value: f32,
    },
    /// A validation accuracy is non-finite (diverged local training).
    NonFiniteAccuracy {
        /// The measured accuracy.
        value: f32,
    },
    /// Intersection averaging over a non-empty cohort covered no position
    /// at all: every denominator is zero and the aggregate degenerates to
    /// the previous global.
    NoCoverage {
        /// Number of aggregated positions (all of them uncovered).
        positions: usize,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::UpdateLengthMismatch { expected, got } => {
                write!(f, "update length mismatch: expected {expected}, got {got}")
            }
            InvariantViolation::MaskLengthMismatch { expected, got } => {
                write!(f, "mask length mismatch: expected {expected}, got {got}")
            }
            InvariantViolation::MaskNotBinary { index, value } => {
                write!(f, "mask entry {index} is not binary: {value}")
            }
            InvariantViolation::HammingOutOfDomain { value } => {
                write!(f, "hamming distance {value} outside [0, 1]")
            }
            InvariantViolation::NonFiniteAccuracy { value } => {
                write!(f, "non-finite validation accuracy: {value}")
            }
            InvariantViolation::NoCoverage { positions } => {
                write!(f, "aggregation covered none of {positions} positions")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Checks that a decoded `(params, mask)` pair matches the model's flat
/// parameter count.
///
/// # Errors
///
/// [`InvariantViolation::UpdateLengthMismatch`] or
/// [`InvariantViolation::MaskLengthMismatch`], parameters checked first.
#[must_use = "a dropped Result hides the violation it reports"]
pub fn check_update_shape(
    params: &[f32],
    mask: &[f32],
    expected: usize,
) -> Result<(), InvariantViolation> {
    if params.len() != expected {
        return Err(InvariantViolation::UpdateLengthMismatch { expected, got: params.len() });
    }
    if mask.len() != expected {
        return Err(InvariantViolation::MaskLengthMismatch { expected, got: mask.len() });
    }
    Ok(())
}

/// Checks that every mask entry is exactly `0.0` or `1.0` (the federation's
/// mask encoding; see `subfed_nn::is_mask_bit`).
///
/// # Errors
///
/// [`InvariantViolation::MaskNotBinary`] at the first offending position.
#[must_use = "a dropped Result hides the violation it reports"]
pub fn check_mask_binary(mask: &[f32]) -> Result<(), InvariantViolation> {
    match mask.iter().enumerate().find(|(_, &v)| !subfed_nn::is_mask_bit(v)) {
        None => Ok(()),
        Some((index, &value)) => Err(InvariantViolation::MaskNotBinary { index, value }),
    }
}

/// Checks that a Hamming distance is finite and within `[0, 1]`.
///
/// # Errors
///
/// [`InvariantViolation::HammingOutOfDomain`].
#[must_use = "a dropped Result hides the violation it reports"]
pub fn check_hamming_domain(value: f32) -> Result<(), InvariantViolation> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(InvariantViolation::HammingOutOfDomain { value })
    }
}

/// Checks that a validation accuracy is finite.
///
/// # Errors
///
/// [`InvariantViolation::NonFiniteAccuracy`].
#[must_use = "a dropped Result hides the violation it reports"]
pub fn check_accuracy_finite(value: f32) -> Result<(), InvariantViolation> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(InvariantViolation::NonFiniteAccuracy { value })
    }
}

/// Checks that intersection averaging over `updates` covers at least one
/// of `positions` — i.e. at least one client keeps at least one position.
/// An empty cohort or a zero-length model is trivially fine (other asserts
/// own those cases); what this catches is a *non-empty* cohort whose masks
/// are all-zero, which silently degenerates every denominator.
///
/// # Errors
///
/// [`InvariantViolation::NoCoverage`].
#[must_use = "a dropped Result hides the violation it reports"]
pub fn check_aggregation_coverage(
    updates: &[(Vec<f32>, Vec<f32>)],
    positions: usize,
) -> Result<(), InvariantViolation> {
    if updates.is_empty() || positions == 0 {
        return Ok(());
    }
    let covered = updates.iter().any(|(_, mask)| mask.iter().copied().any(subfed_nn::is_kept));
    if covered {
        Ok(())
    } else {
        Err(InvariantViolation::NoCoverage { positions })
    }
}

/// Streaming-aggregation variant of [`check_aggregation_coverage`]: the
/// sharded accumulator never materializes the cohort's `(params, mask)`
/// pairs, so coverage is judged from its per-position holder counts
/// instead. Zero folded updates or a zero-length model are trivially fine
/// (other asserts own those cases).
///
/// # Errors
///
/// [`InvariantViolation::NoCoverage`] when `updates > 0` but every
/// position's holder count is zero.
#[must_use = "a dropped Result hides the violation it reports"]
pub fn check_streaming_coverage(counts: &[f32], updates: usize) -> Result<(), InvariantViolation> {
    if updates == 0 || counts.is_empty() {
        return Ok(());
    }
    if counts.iter().any(|&c| c > 0.0) {
        Ok(())
    } else {
        Err(InvariantViolation::NoCoverage { positions: counts.len() })
    }
}

/// Records a violation on the trace (and flushes, so the event survives an
/// imminent panic). Never panics; usable from release builds.
pub fn report(tracer: &Tracer, round: usize, context: &str, violation: &InvariantViolation) {
    tracer.emit(TraceEvent::Invariant {
        round,
        context: context.to_string(),
        detail: violation.to_string(),
    });
    tracer.flush();
}

/// Debug-assert layer: in debug builds, evaluates `check` and — on
/// violation — reports it on the trace, then panics. Release builds skip
/// the closure entirely, so checks may be arbitrarily expensive.
///
/// # Panics
///
/// Panics in debug builds when `check` returns a violation.
#[inline]
// Returns (): the `-> Result` in the closure bound below is the *input*
// contract, not this function's return type.
// lint: allow(must-use-result)
pub fn enforce_with<F>(tracer: &Tracer, round: usize, context: &str, check: F)
where
    F: FnOnce() -> Result<(), InvariantViolation>,
{
    #[cfg(debug_assertions)]
    if let Err(violation) = check() {
        report(tracer, round, context, &violation);
        // The whole point of the debug-assert layer: fail loudly at the
        // boundary where the corrupt data entered the federation.
        // lint: allow(no-unwrap)
        panic!("invariant violated at {context} (round {round}): {violation}");
    }
    #[cfg(not(debug_assertions))]
    let _ = (tracer, round, context, check);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subfed_metrics::trace::VecSink;

    #[test]
    fn update_shape_accepts_matching_lengths() {
        assert_eq!(check_update_shape(&[1.0, 2.0], &[1.0, 0.0], 2), Ok(()));
    }

    #[test]
    fn update_shape_reports_which_side_mismatched() {
        assert_eq!(
            check_update_shape(&[1.0], &[1.0, 0.0], 2),
            Err(InvariantViolation::UpdateLengthMismatch { expected: 2, got: 1 })
        );
        assert_eq!(
            check_update_shape(&[1.0, 2.0], &[1.0], 2),
            Err(InvariantViolation::MaskLengthMismatch { expected: 2, got: 1 })
        );
    }

    #[test]
    fn mask_binary_rejects_fractions_and_nan() {
        assert_eq!(check_mask_binary(&[0.0, 1.0, 1.0]), Ok(()));
        assert_eq!(
            check_mask_binary(&[0.0, 0.5]),
            Err(InvariantViolation::MaskNotBinary { index: 1, value: 0.5 })
        );
        let got = check_mask_binary(&[1.0, f32::NAN]).unwrap_err();
        assert!(matches!(got, InvariantViolation::MaskNotBinary { index: 1, .. }));
    }

    #[test]
    fn hamming_domain_is_the_closed_unit_interval() {
        assert_eq!(check_hamming_domain(0.0), Ok(()));
        assert_eq!(check_hamming_domain(1.0), Ok(()));
        for bad in [-0.001f32, 1.001, f32::NAN, f32::INFINITY] {
            assert!(check_hamming_domain(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn accuracy_must_be_finite() {
        assert_eq!(check_accuracy_finite(0.73), Ok(()));
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            assert_eq!(
                check_accuracy_finite(bad).unwrap_err().to_string(),
                format!("non-finite validation accuracy: {bad}")
            );
        }
    }

    #[test]
    fn coverage_catches_all_zero_cohorts_only() {
        // Zero-denominator everywhere: a non-empty cohort whose masks keep
        // nothing. Every position silently falls back to the old global.
        let all_zero = vec![(vec![1.0, 2.0], vec![0.0, 0.0]); 3];
        assert_eq!(
            check_aggregation_coverage(&all_zero, 2),
            Err(InvariantViolation::NoCoverage { positions: 2 })
        );
        // One kept position anywhere is enough.
        let one_kept = vec![(vec![1.0, 2.0], vec![0.0, 0.0]), (vec![3.0, 4.0], vec![0.0, 1.0])];
        assert_eq!(check_aggregation_coverage(&one_kept, 2), Ok(()));
        // Empty cohort and empty model are owned by other asserts.
        assert_eq!(check_aggregation_coverage(&[], 2), Ok(()));
        assert_eq!(check_aggregation_coverage(&all_zero, 0), Ok(()));
    }

    #[test]
    fn streaming_coverage_mirrors_the_batch_check() {
        assert_eq!(
            check_streaming_coverage(&[0.0, 0.0], 3),
            Err(InvariantViolation::NoCoverage { positions: 2 })
        );
        assert_eq!(check_streaming_coverage(&[0.0, 1.0], 3), Ok(()));
        assert_eq!(check_streaming_coverage(&[0.0, 0.0], 0), Ok(()));
        assert_eq!(check_streaming_coverage(&[], 3), Ok(()));
    }

    #[test]
    fn report_lands_on_the_trace() {
        let sink = Arc::new(VecSink::new());
        let tracer = Tracer::new(sink.clone());
        let violation = InvariantViolation::NoCoverage { positions: 7 };
        report(&tracer, 4, "aggregate", &violation);
        assert_eq!(
            sink.snapshot(),
            vec![TraceEvent::Invariant {
                round: 4,
                context: "aggregate".into(),
                detail: "aggregation covered none of 7 positions".into(),
            }]
        );
    }

    #[test]
    fn enforce_passes_clean_checks_silently() {
        let sink = Arc::new(VecSink::new());
        let tracer = Tracer::new(sink.clone());
        enforce_with(&tracer, 1, "decode client 0", || Ok(()));
        assert!(sink.is_empty());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn enforce_traces_then_panics_in_debug() {
        let sink = Arc::new(VecSink::new());
        let tracer = Tracer::new(sink.clone());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            enforce_with(&tracer, 2, "gate client 1", || check_hamming_domain(f32::NAN));
        }));
        let payload = result.expect_err("debug enforcement must panic");
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("invariant violated at gate client 1 (round 2)"), "{msg}");
        // The trace event was emitted before the panic.
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.snapshot()[0].kind(), "invariant");
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn enforce_skips_the_closure_in_release() {
        let tracer = Tracer::disabled();
        let mut evaluated = false;
        enforce_with(&tracer, 1, "aggregate", || {
            evaluated = true;
            Err(InvariantViolation::NoCoverage { positions: 1 })
        });
        assert!(!evaluated, "release builds must not evaluate checks");
    }
}
