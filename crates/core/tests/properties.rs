//! Property-based tests of the aggregation algebra and the wire format.

use proptest::prelude::*;
use subfed_core::checkpoint::Checkpoint;
use subfed_core::wire::{
    decode_update, decode_update_q8, encode_update, encode_update_q8, encoded_len, q8_max_error,
};
use subfed_core::{fedavg_aggregate, subfedavg_aggregate, subfedavg_aggregate_trimmed};

/// Strategy: `n` parameter values paired with a 0/1 mask.
fn update(n: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (
        prop::collection::vec(-100.0f32..100.0, n),
        prop::collection::vec(prop::bool::ANY, n)
            .prop_map(|bits| bits.into_iter().map(|b| if b { 1.0 } else { 0.0 }).collect()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn subfedavg_result_bounded_by_contributors(
        global in prop::collection::vec(-100.0f32..100.0, 24),
        updates in prop::collection::vec(update(24), 1..6),
    ) {
        let out = subfedavg_aggregate(&global, &updates);
        for i in 0..24 {
            let contrib: Vec<f32> = updates
                .iter()
                .filter(|(_, m)| m[i] != 0.0)
                .map(|(p, _)| p[i])
                .collect();
            if contrib.is_empty() {
                prop_assert_eq!(out[i], global[i], "untouched position must keep global");
            } else {
                let lo = contrib.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = contrib.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(out[i] >= lo - 1e-3 && out[i] <= hi + 1e-3,
                    "position {i}: {} outside [{lo}, {hi}]", out[i]);
            }
        }
    }

    #[test]
    fn subfedavg_with_full_masks_equals_fedavg(
        global in prop::collection::vec(-10.0f32..10.0, 16),
        params in prop::collection::vec(
            prop::collection::vec(-10.0f32..10.0, 16), 1..5),
    ) {
        let masked: Vec<(Vec<f32>, Vec<f32>)> =
            params.iter().map(|p| (p.clone(), vec![1.0; 16])).collect();
        let sub = subfedavg_aggregate(&global, &masked);
        let fed = fedavg_aggregate(
            &params.iter().map(|p| (p.clone(), 1usize)).collect::<Vec<_>>(),
        );
        for (a, b) in sub.iter().zip(fed.iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn subfedavg_is_permutation_invariant(
        global in prop::collection::vec(-10.0f32..10.0, 12),
        updates in prop::collection::vec(update(12), 2..5),
    ) {
        let forward = subfedavg_aggregate(&global, &updates);
        let mut reversed = updates.clone();
        reversed.reverse();
        let backward = subfedavg_aggregate(&global, &reversed);
        for (a, b) in forward.iter().zip(backward.iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn fedavg_weighted_mean_is_convex(
        updates in prop::collection::vec(
            (prop::collection::vec(-10.0f32..10.0, 8), 1usize..20), 1..5),
    ) {
        let out = fedavg_aggregate(&updates);
        for i in 0..8 {
            let lo = updates.iter().map(|(p, _)| p[i]).fold(f32::INFINITY, f32::min);
            let hi = updates.iter().map(|(p, _)| p[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[i] >= lo - 1e-4 && out[i] <= hi + 1e-4);
        }
    }

    #[test]
    fn wire_roundtrip_arbitrary_updates((params, mask) in update(61)) {
        let buf = encode_update(&params, &mask);
        let kept = mask.iter().filter(|&&m| m != 0.0).count();
        prop_assert_eq!(buf.len() as u64, encoded_len(61, kept));
        let (got_params, got_mask) = decode_update(&buf).unwrap();
        prop_assert_eq!(got_mask, mask.clone());
        for i in 0..61 {
            if mask[i] != 0.0 {
                prop_assert_eq!(got_params[i], params[i]);
            } else {
                prop_assert_eq!(got_params[i], 0.0);
            }
        }
    }

    #[test]
    fn trimmed_aggregate_is_also_bounded(
        global in prop::collection::vec(-10.0f32..10.0, 12),
        updates in prop::collection::vec(update(12), 1..6),
        trim in 0usize..3,
    ) {
        let out = subfedavg_aggregate_trimmed(&global, &updates, trim);
        for i in 0..12 {
            let contrib: Vec<f32> = updates
                .iter()
                .filter(|(_, m)| m[i] != 0.0)
                .map(|(p, _)| p[i])
                .collect();
            if contrib.is_empty() {
                prop_assert_eq!(out[i], global[i]);
            } else {
                let lo = contrib.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = contrib.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(out[i] >= lo - 1e-3 && out[i] <= hi + 1e-3);
            }
        }
    }

    #[test]
    fn q8_error_within_half_step(params in prop::collection::vec(-50.0f32..50.0, 1..200)) {
        let back = decode_update_q8(&encode_update_q8(&params), params.len()).unwrap();
        let lo = params.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = params.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let bound = q8_max_error(lo, hi) + 1e-4 * (1.0 + hi.abs().max(lo.abs()));
        for (a, b) in params.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() <= bound, "{a} vs {b} exceeds {bound}");
        }
    }

    #[test]
    fn checkpoint_roundtrip_arbitrary(
        round in 0u32..10_000,
        global in prop::collection::vec(-100.0f32..100.0, 0..80),
        masks in prop::collection::vec(prop::bool::ANY, 0..240),
    ) {
        let n = global.len();
        let client_masks: Vec<Vec<f32>> = if n == 0 {
            Vec::new()
        } else {
            masks
                .chunks(n)
                .filter(|c| c.len() == n)
                .map(|c| c.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect())
                .collect()
        };
        let ckpt = Checkpoint { round, global, client_masks };
        let buf = ckpt.encode();
        prop_assert_eq!(
            buf.len() as u64,
            Checkpoint::encoded_len(ckpt.global.len(), ckpt.client_masks.len())
        );
        let back = Checkpoint::decode(&buf).unwrap();
        prop_assert_eq!(back, ckpt);
    }

    #[test]
    fn wire_rejects_truncation((params, mask) in update(33), cut in 1usize..10) {
        let buf = encode_update(&params, &mask);
        prop_assume!(cut < buf.len());
        let truncated = &buf[..buf.len() - cut];
        // Either an error, or (if the cut only removed kept-parameter
        // bytes beyond what the mask requires) impossible — decode must
        // never panic and must error on any shortfall.
        prop_assert!(decode_update(truncated).is_err());
    }
}
