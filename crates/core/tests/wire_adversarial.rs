//! Adversarial wire-format corpus: the decode surface must be *total* —
//! every malformed frame returns a typed [`WireError`], and no input
//! byte sequence panics. The corpus is deterministic (fixed golden
//! frame, exhaustive header bit flips, truncation at every byte
//! boundary, seeded random fuzz frames), so a regression reproduces
//! identically in CI. Note the test profile compiles with
//! `debug-assertions` on, so any wrapping arithmetic on the decode path
//! would abort these tests — silent wraparound cannot hide here.

use subfed_core::wire::{decode_update, decode_update_q8, encode_update, WireError};
use subfed_tensor::init::SeededRng;

/// A golden frame with a mixed mask: 21 params, 13 kept.
fn golden() -> (Vec<f32>, Vec<f32>, Vec<u8>) {
    let params: Vec<f32> = (0..21).map(|i| i as f32 * 0.5 - 4.0).collect();
    let mask: Vec<f32> = (0..21).map(|i| if i % 3 == 0 { 0.0 } else { 1.0 }).collect();
    let frame = encode_update(&params, &mask);
    (params, mask, frame)
}

#[test]
fn golden_frame_roundtrips() {
    let (params, mask, frame) = golden();
    let (p, m) = decode_update(&frame).expect("golden frame decodes");
    assert_eq!(m, mask);
    for (i, (&got, &want)) in p.iter().zip(params.iter()).enumerate() {
        let want = if mask[i] == 0.0 { 0.0 } else { want };
        assert_eq!(got, want, "param {i}");
    }
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    let (_, _, frame) = golden();
    // Every proper prefix is missing load-bearing bytes: header, mask,
    // or kept parameters. Each must be an Err, never a panic.
    for cut in 0..frame.len() {
        let err = decode_update(&frame[..cut])
            .expect_err(&format!("prefix of {cut} bytes must not decode"));
        match err {
            WireError::TruncatedHeader { got } => assert_eq!(got, cut),
            WireError::TruncatedMask { .. } | WireError::TruncatedParams { .. } => {}
            other => panic!("unexpected error at cut {cut}: {other:?}"),
        }
    }
}

#[test]
fn every_header_bit_flip_decodes_or_rejects_without_panicking() {
    let (_, _, frame) = golden();
    for byte in 0..8 {
        for bit in 0..8 {
            let mut mutant = frame.clone();
            mutant[byte] ^= 1 << bit;
            let verdict = decode_update(&mutant);
            // Flips in the magic tag must be caught by name.
            if byte < 2 {
                assert!(
                    matches!(verdict, Err(WireError::BadMagic { .. })),
                    "magic flip {byte}.{bit}: {verdict:?}"
                );
            }
            // Flips that grow the declared count past what the frame's
            // bytes can cover must be rejected by name. (Small growth
            // can legally decode — the extra positions read as pruned —
            // but the decode call above already proved it cannot panic.)
            if byte >= 4 && frame[byte] & (1 << bit) == 0 {
                let new_len =
                    u32::from_le_bytes([mutant[4], mutant[5], mutant[6], mutant[7]]) as usize;
                if new_len.div_ceil(8) > frame.len() - 8 {
                    assert!(verdict.is_err(), "count inflation {byte}.{bit}: {verdict:?}");
                }
            }
        }
    }
}

#[test]
fn count_inflation_to_the_u32_limit_is_rejected_not_allocated() {
    let (_, _, mut frame) = golden();
    // Declare u32::MAX parameters on a 100-byte frame: an honest decoder
    // must refuse (the mask alone would need 512 MiB), not allocate.
    frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    match decode_update(&frame) {
        Err(WireError::TruncatedMask { needed, got }) => {
            assert_eq!(needed, (u32::MAX as usize).div_ceil(8));
            assert!(got < needed);
        }
        other => panic!("expected TruncatedMask, got {other:?}"),
    }
    // One past the real count: the packed mask rounds to the same byte
    // count, the extra position reads as pruned, and the frame still
    // carries enough kept floats — but never a panic either way.
    let (_, _, mut frame) = golden();
    frame[4..8].copy_from_slice(&22u32.to_le_bytes());
    let _ = decode_update(&frame);
}

#[test]
fn seeded_random_frames_never_panic_the_decoder() {
    // 4096 deterministic fuzz frames of every length 0..64: whatever the
    // bytes, the decoder returns a verdict.
    let mut rng = SeededRng::new(0x5FA1_F00D);
    let mut decoded = 0u32;
    for round in 0..4096u32 {
        let len = (round % 64) as usize;
        let frame: Vec<u8> = (0..len).map(|_| (rng.below(256)) as u8).collect();
        if decode_update(&frame).is_ok() {
            decoded += 1;
        }
    }
    // Random bytes essentially never carry the magic tag.
    assert_eq!(decoded, 0, "random frames should not decode");
}

#[test]
fn q8_truncation_and_overflow_are_typed_errors() {
    let params: Vec<f32> = (0..33).map(|i| (i as f32).sin()).collect();
    let frame = subfed_core::wire::encode_update_q8(&params);
    assert_eq!(frame.len(), 8 + 33);
    assert!(decode_update_q8(&frame, 33).is_ok());
    for cut in 0..frame.len() {
        assert!(
            matches!(
                decode_update_q8(&frame[..cut], 33),
                Err(WireError::TruncatedQuantised { .. })
            ),
            "q8 prefix of {cut} bytes must not decode"
        );
    }
    // A length whose header math would wrap usize is rejected by name.
    assert!(matches!(decode_update_q8(&frame, usize::MAX - 4), Err(WireError::LengthOverflow)));
}
