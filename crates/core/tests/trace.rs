//! Integration tests of the round-level trace layer: every phase of a
//! Sub-FedAvg round shows up in the event stream, and the stream content
//! (ordering and timings aside) is identical across thread counts — the
//! determinism contract documented in `docs/OBSERVABILITY.md`.

use std::sync::Arc;

use subfed_core::algorithms::{SubFedAvgHy, SubFedAvgUn};
use subfed_core::{FedConfig, FederatedAlgorithm, Federation};
use subfed_data::{partition_pathological, PartitionConfig, SynthConfig, SynthVision};
use subfed_metrics::trace::{canonicalize, TraceEvent, Tracer, VecSink};
use subfed_nn::models::ModelSpec;
use subfed_pruning::{HybridController, UnstructuredController};

fn federation(rounds: usize, threads: usize, dropout_prob: f32) -> Federation {
    let data = SynthVision::generate(SynthConfig {
        channels: 1,
        height: 16,
        width: 16,
        classes: 4,
        train_per_class: 24,
        test_per_class: 6,
        noise_std: 0.1,
        shift: 1,
        grid: 4,
        seed: 9,
    });
    let clients = partition_pathological(
        data.train(),
        data.test(),
        &PartitionConfig {
            num_clients: 4,
            shard_size: 12,
            shards_per_client: 2,
            val_fraction: 0.2,
            seed: 9,
        },
    );
    Federation::new(
        ModelSpec::cnn5(1, 16, 16, 4),
        clients,
        FedConfig {
            rounds,
            sample_frac: 0.75,
            local_epochs: 2,
            eval_every: 2,
            seed: 9,
            threads,
            dropout_prob,
            ..Default::default()
        },
    )
}

fn traced_un_run(threads: usize, dropout_prob: f32) -> Vec<TraceEvent> {
    let sink = Arc::new(VecSink::new());
    let fed = federation(3, threads, dropout_prob).with_tracer(Tracer::new(sink.clone()));
    let mut controller = UnstructuredController::paper_defaults(0.5);
    controller.acc_threshold = 0.0;
    controller.rate = 0.2;
    let _ = SubFedAvgUn::with_controller(fed, controller).run();
    sink.snapshot()
}

#[test]
fn subfedavg_un_trace_covers_every_phase() {
    let events = traced_un_run(1, 0.0);
    for kind in [
        "round_start",
        "train",
        "prune",
        "prune_gate",
        "encode",
        "decode",
        "download",
        "upload",
        "aggregate",
        "eval",
        "round_end",
    ] {
        assert!(
            events.iter().any(|e| e.kind() == kind),
            "no `{kind}` event in {} traced events",
            events.len()
        );
    }
    // One round_end per round, in order.
    let ends: Vec<usize> =
        events.iter().filter(|e| e.kind() == "round_end").map(|e| e.round()).collect();
    assert_eq!(ends, vec![1, 2, 3]);
    // Every gate decision carries a documented reason tag.
    for e in &events {
        if let TraceEvent::PruneGate { track, reason, .. } = e {
            assert_eq!(track, "un");
            assert!(
                ["pruned", "acc-below-threshold", "target-reached", "mask-stable"]
                    .contains(&reason.as_str()),
                "unknown gate reason {reason:?}"
            );
        }
    }
}

#[test]
fn trace_content_is_identical_across_thread_counts() {
    let one = canonicalize(&traced_un_run(1, 0.0));
    let three = canonicalize(&traced_un_run(3, 0.0));
    let four = canonicalize(&traced_un_run(4, 0.0));
    assert_eq!(one, three, "canonical trace differs between threads=1 and threads=3");
    assert_eq!(one, four, "canonical trace differs between threads=1 and threads=4");
}

#[test]
fn seq_numbers_are_dense_and_unique_across_worker_threads() {
    // The emission counter is shared across tracer clones, so even with 4
    // worker threads the recorded seqs form exactly {0, 1, …, n-1} — the
    // canonical total order `subfed-lint conform` replays. seq lives in
    // the JSONL envelope, not the event, so canonicalize (asserted above)
    // is untouched by which thread drew which number.
    let sink = Arc::new(VecSink::new());
    let fed = federation(3, 4, 0.0).with_tracer(Tracer::new(sink.clone()));
    let mut controller = UnstructuredController::paper_defaults(0.5);
    controller.acc_threshold = 0.0;
    controller.rate = 0.2;
    let _ = SubFedAvgUn::with_controller(fed, controller).run();
    let mut seqs: Vec<u64> = sink.seq_snapshot().iter().map(|(s, _)| *s).collect();
    let n = seqs.len() as u64;
    assert!(n > 0);
    seqs.sort_unstable();
    assert_eq!(seqs, (0..n).collect::<Vec<_>>(), "seqs are not dense 0..n");
}

#[test]
fn dropout_injection_is_traced() {
    // A high dropout probability guarantees at least one crash in 3
    // rounds of a 3-client cohort (and the run itself stays deterministic,
    // so so does the trace).
    let events = traced_un_run(1, 0.6);
    let dropped: Vec<&TraceEvent> = events.iter().filter(|e| e.kind() == "dropout").collect();
    assert!(!dropped.is_empty(), "no dropout events despite 60% dropout");
    // Every dropout names a sampled non-survivor of its round.
    for e in &dropped {
        let (round, client) = (e.round(), e.client().expect("dropout has a client"));
        let start = events
            .iter()
            .find_map(|ev| match ev {
                TraceEvent::RoundStart { round: r, sampled, survivors, .. } if *r == round => {
                    Some((sampled, survivors))
                }
                _ => None,
            })
            .expect("round_start precedes dropout");
        assert!(start.0.contains(&client));
        assert!(!start.1.contains(&client));
    }
    // A crashed client produces no train event that round.
    for e in &dropped {
        let (round, client) = (e.round(), e.client().unwrap());
        assert!(!events.iter().any(|ev| matches!(ev,
            TraceEvent::ClientTrain { round: r, client: c, .. } if *r == round && *c == client)));
    }
}

#[test]
fn subfedavg_hy_emits_both_gate_tracks() {
    let sink = Arc::new(VecSink::new());
    let fed = federation(2, 1, 0.0).with_tracer(Tracer::new(sink.clone()));
    let mut controller = HybridController::paper_defaults(0.4, 0.5);
    controller.acc_threshold = 0.0;
    controller.unstructured.acc_threshold = 0.0;
    controller.structured_rate = 0.2;
    controller.unstructured.rate = 0.2;
    let _ = SubFedAvgHy::with_controller(fed, controller).run();
    let events = sink.snapshot();
    let tracks: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::PruneGate { track, .. } => Some(track.as_str()),
            _ => None,
        })
        .collect();
    assert!(tracks.contains(&"channel"), "no structured-track gate event");
    assert!(tracks.contains(&"un"), "no unstructured-track gate event");
    // Hybrid rounds also exercise the wire codec.
    assert!(events.iter().any(|e| e.kind() == "encode"));
    assert!(events.iter().any(|e| e.kind() == "decode"));
}

#[test]
fn disabled_tracer_emits_nothing_and_changes_nothing() {
    // A run with tracing off must be bit-identical to a traced run (the
    // tracer observes; it must never perturb).
    let mut controller = UnstructuredController::paper_defaults(0.5);
    controller.acc_threshold = 0.0;
    controller.rate = 0.2;
    let plain = SubFedAvgUn::with_controller(federation(3, 1, 0.0), controller).run();
    let sink = Arc::new(VecSink::new());
    let traced_fed = federation(3, 1, 0.0).with_tracer(Tracer::new(sink.clone()));
    let traced = SubFedAvgUn::with_controller(traced_fed, controller).run();
    assert_eq!(plain, traced);
    assert!(!sink.snapshot().is_empty());
}
