//! A small hand-rolled Rust lexer: just enough token structure for the
//! lint rules, with exact line numbers and comment-directive capture.
//!
//! The lexer understands line/nested-block comments, string/char/byte
//! literals (including raw strings with any number of `#` guards),
//! lifetimes, numeric literals (distinguishing float from integer), and
//! punctuation. It does **not** build an AST — rules pattern-match over
//! the flat token stream, which is enough for the hazards this tool
//! targets and keeps the implementation dependency-free.

/// What a token is, with just the payload the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `pub`, `fn`, …).
    Ident(String),
    /// An integer literal (`42`, `0x5FA1`, `1_000u64`), carrying its
    /// normalized (radix-decoded, underscore- and suffix-stripped,
    /// wrapping) value so `0x2A` and `42` compare equal — what the
    /// `seed-collision` rule keys on.
    Int(u64),
    /// A float literal (`0.0`, `1e-4`, `2.5f32`).
    Float,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`).
    Lifetime,
    /// A single punctuation character (`.`, `=`, `[`, `!`, …).
    Punct(char),
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
}

/// A `// lint: allow(rule-a, rule-b)` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The rule ids inside `allow(…)`.
    pub rules: Vec<String>,
}

/// What a `// lint: hot` / `// lint: cold` / `// lint: total` marker says
/// about the function it annotates (the `fn` on the same line or the line
/// below).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    /// The function is an additional hot-path entry point for the
    /// call-graph analyses (see `crate::callgraph`).
    Hot,
    /// The function is cold (per-round setup, not per-batch work); the
    /// call-graph analyses do not traverse through it.
    Cold,
    /// The function is an additional panic-freedom entry point for the
    /// totality analysis (see `crate::totality`): no panic source may be
    /// reachable from it.
    Total,
}

/// A `// lint: hot`, `// lint: cold`, or `// lint: total` annotation
/// comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// What the annotated function is asserted to be.
    pub kind: MarkerKind,
}

/// The output of [`lex`]: the token stream plus every lint directive.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Suppression comments in source order.
    pub allows: Vec<AllowDirective>,
    /// Hot/cold function annotations in source order.
    pub markers: Vec<Marker>,
}

/// Lexes Rust source. Unterminated literals are tolerated (the rest of
/// the file becomes part of the literal) — the linter must never panic on
/// the code it scans.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && next == Some('/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let comment: String = chars[start..i].iter().collect();
            if let Some(d) = parse_allow(&comment, line) {
                out.allows.push(d);
            } else if let Some(m) = parse_marker(&comment, line) {
                out.markers.push(m);
            }
        } else if c == '/' && next == Some('*') {
            let mut depth = 1;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            let tok_line = line;
            i = skip_string(&chars, i + 1, &mut line);
            out.tokens.push(Token { kind: TokenKind::Str, line: tok_line });
        } else if is_raw_string_start(&chars, i) {
            let tok_line = line;
            i = skip_raw_string(&chars, i, &mut line);
            out.tokens.push(Token { kind: TokenKind::Str, line: tok_line });
        } else if (c == 'b' && next == Some('\'')) || c == '\'' {
            let quote = if c == 'b' { i + 1 } else { i };
            // `'a` (no closing quote right after the identifier) is a
            // lifetime; everything else is a char literal.
            let after = chars.get(quote + 1).copied();
            let closes = chars.get(quote + 2).copied() == Some('\'');
            if c == '\'' && after.is_some_and(|a| a.is_alphabetic() || a == '_') && !closes {
                let mut j = quote + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.tokens.push(Token { kind: TokenKind::Lifetime, line });
                i = j;
            } else {
                let tok_line = line;
                i = skip_char_literal(&chars, quote + 1, &mut line);
                out.tokens.push(Token { kind: TokenKind::Char, line: tok_line });
            }
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            out.tokens.push(Token { kind: TokenKind::Ident(ident), line });
        } else if c.is_ascii_digit() {
            let (end, is_float, value) = scan_number(&chars, i);
            out.tokens.push(Token {
                kind: if is_float { TokenKind::Float } else { TokenKind::Int(value) },
                line,
            });
            i = end;
        } else {
            out.tokens.push(Token { kind: TokenKind::Punct(c), line });
            i += 1;
        }
    }
    out
}

/// Recognises `r"`, `r#"`, `br"`, `br#"` (any number of hashes).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn skip_raw_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    i += 1; // 'r'
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && chars.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a (non-raw) string body starting just after the opening quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a char/byte literal body starting just after the opening quote.
fn skip_char_literal(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Scans a numeric literal starting at a digit; returns
/// `(end, is_float, normalized_value)`. The value decodes the radix
/// prefix, skips `_` separators, stops at the type suffix, and wraps on
/// overflow — it is only meaningful when `is_float` is false.
fn scan_number(chars: &[char], start: usize) -> (usize, bool, u64) {
    let mut i = start;
    let mut is_float = false;
    let mut value = 0u64;
    // Hex/octal/binary literals are always integers.
    if chars[i] == '0' && matches!(chars.get(i + 1), Some('x') | Some('o') | Some('b') | Some('X'))
    {
        let radix = match chars[i + 1] {
            'x' | 'X' => 16,
            'o' => 8,
            _ => 2,
        };
        i += 2;
        let mut in_suffix = false;
        while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
            if !in_suffix && chars[i] != '_' {
                match chars[i].to_digit(radix) {
                    Some(d) => {
                        value = value.wrapping_mul(u64::from(radix)).wrapping_add(u64::from(d));
                    }
                    None => in_suffix = true, // `u64`/`i32` tail
                }
            }
            i += 1;
        }
        return (i, false, value);
    }
    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
        if chars[i] != '_' {
            let d = u64::from(chars[i] as u8 - b'0');
            value = value.wrapping_mul(10).wrapping_add(d);
        }
        i += 1;
    }
    // A '.' continues the float only when not followed by another '.'
    // (range) or an identifier start (method call on a literal).
    if chars.get(i) == Some(&'.') {
        let after = chars.get(i + 1).copied();
        let method_or_range = after.is_some_and(|a| a == '.' || a.is_alphabetic() || a == '_');
        if !method_or_range {
            is_float = true;
            i += 1;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
        }
    }
    if matches!(chars.get(i), Some('e') | Some('E')) {
        let mut j = i + 1;
        if matches!(chars.get(j), Some('+') | Some('-')) {
            j += 1;
        }
        if chars.get(j).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            i = j;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
        }
    }
    // Type suffix (f32/f64 forces float; i*/u* keeps integer).
    let suf_start = i;
    while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    let suffix: String = chars[suf_start..i].iter().collect();
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        is_float = true;
    }
    (i, is_float, value)
}

/// Parses a `// lint: allow(a, b)` comment, returning `None` for
/// ordinary comments.
fn parse_allow(comment: &str, line: usize) -> Option<AllowDirective> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("lint:")?.trim();
    let inner = rest.strip_prefix("allow(")?.split(')').next()?;
    let rules: Vec<String> =
        inner.split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        None
    } else {
        Some(AllowDirective { line, rules })
    }
}

/// Parses a `// lint: hot` / `// lint: cold` / `// lint: total` comment,
/// returning `None` for ordinary comments (trailing prose after the
/// keyword is tolerated: `// lint: cold — once-per-round setup`).
fn parse_marker(comment: &str, line: usize) -> Option<Marker> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("lint:")?.trim();
    let keyword = rest.split(|c: char| !c.is_ascii_alphanumeric()).next()?;
    match keyword {
        "hot" => Some(Marker { line, kind: MarkerKind::Hot }),
        "cold" => Some(Marker { line, kind: MarkerKind::Cold }),
        "total" => Some(Marker { line, kind: MarkerKind::Total }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in /* nested */ block */
            let s = "unwrap()";
            let r = r#"expect("x")"#;
            let c = 'p';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = 2;\n";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.kind == TokenKind::Ident("b".into())).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn float_vs_int_vs_method_call() {
        let kinds: Vec<TokenKind> = lex("1.0 2 3e-4 5f32 0x5FA1 7.max(2) 0..3")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert!(kinds.contains(&TokenKind::Float)); // 1.0
        let floats = kinds.iter().filter(|k| **k == TokenKind::Float).count();
        assert_eq!(floats, 3, "1.0, 3e-4, 5f32: {kinds:?}");
        let ints = kinds.iter().filter(|k| matches!(k, TokenKind::Int(_))).count();
        assert_eq!(ints, 6, "2, 0x5FA1, 7, 2, 0, 3: {kinds:?}");
        assert!(kinds.contains(&TokenKind::Int(0x5FA1)), "hex decodes: {kinds:?}");
    }

    #[test]
    fn int_literals_normalize_radix_separators_and_suffixes() {
        let kinds: Vec<TokenKind> = lex("42 0x2A 0o52 0b101010 4_2 42u64 0xFEEDu32")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        let values: Vec<u64> = kinds
            .iter()
            .filter_map(|k| match k {
                TokenKind::Int(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec![42, 42, 42, 42, 42, 42, 0xFEED]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let charlits = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(charlits, 1);
    }

    #[test]
    fn allow_directives_are_captured() {
        let src = "foo(); // lint: allow(no-unwrap, float-eq)\nbar();\n// lint: allow(unchecked-index)\nbaz();\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[0].rules, vec!["no-unwrap", "float-eq"]);
        assert_eq!(lexed.allows[1].line, 3);
        assert_eq!(lexed.allows[1].rules, vec!["unchecked-index"]);
    }

    #[test]
    fn raw_strings_with_hash_guards_hide_quotes_and_tokens() {
        let src = r####"let a = r#"inner "quoted" unwrap()"#; let b = r##"nested "# guard"##; after();"####;
        let lexed = lex(src);
        let strs = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Str).count();
        assert_eq!(strs, 2, "{:?}", lexed.tokens);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Ident("after".into())));
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Ident("unwrap".into())));
    }

    #[test]
    fn nested_block_comments_track_depth_and_lines() {
        let src =
            "before();\n/* outer /* inner\n/* deeper */ still inner */\nouter tail */ after();";
        let lexed = lex(src);
        let ids = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some((s.clone(), t.line)),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(
            ids,
            vec![("before".to_string(), 1), ("after".to_string(), 4)],
            "nested comment swallowed the wrong span"
        );
    }

    #[test]
    fn char_literals_holding_quote_and_equals_stay_closed() {
        // A lexer that mistakes '"' for a string opener would swallow the
        // rest of the file; one that mistakes '=' for punctuation would
        // hand float-eq a bogus comparison.
        let src = "let q = '\"'; let e = '='; let esc = '\\''; done();";
        let lexed = lex(src);
        let chars = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(chars, 3, "{:?}", lexed.tokens);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Ident("done".into())));
        // Exactly the three `let` assignments produce '=' punctuation; the
        // '=' inside the char literal must not leak out.
        let eqs = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Punct('=')).count();
        assert_eq!(eqs, 3, "{:?}", lexed.tokens);
    }

    #[test]
    fn allow_directives_inside_cfg_test_modules_are_still_collected() {
        // The lexer reports every directive; exempting test modules is the
        // rule engine's job (it needs the token ranges to decide).
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); } // lint: allow(no-unwrap)\n}\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 3);
        assert_eq!(lexed.allows[0].rules, vec!["no-unwrap"]);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lexed = lex(r#"let s = "a\"unwrap()\"b"; done();"#);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Ident("done".into())));
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Ident("unwrap".into())));
    }
}
