//! The FL-specific rule catalog and the engine that applies it to one
//! lexed file.
//!
//! Each token rule pattern-matches over the flat token stream from
//! [`crate::lexer::lex`]; the scope-aware rules in [`crate::scope`] are
//! run from here on the files they apply to. Findings inside
//! `#[cfg(test)] mod … { … }` blocks are dropped (test code may unwrap
//! freely), and a `// lint: allow(rule-id)` comment on the same line or
//! the line above suppresses a finding while keeping it countable. After
//! suppression, allow directives that suppressed nothing are reported as
//! [`STALE_ALLOW`] — an audit of the escape hatch itself, which is why
//! that rule can never be suppressed.

use crate::lexer::{lex, Token, TokenKind};

/// Identifier of the panicking-call rule.
pub const NO_UNWRAP: &str = "no-unwrap";
/// Identifier of the float-equality rule.
pub const FLOAT_EQ: &str = "float-eq";
/// Identifier of the mask/weight-buffer indexing rule.
pub const UNCHECKED_INDEX: &str = "unchecked-index";
/// Identifier of the `#[must_use]`-on-`Result` rule.
pub const MUST_USE_RESULT: &str = "must-use-result";
/// Identifier of the stale-suppression audit (never itself suppressible).
pub const STALE_ALLOW: &str = "stale-allow";

/// Every rule id, in reporting order (the two scope-aware rules live in
/// [`crate::scope`], the three hot-path dataflow rules in
/// [`crate::dataflow`], the four concurrency rules in [`crate::locks`],
/// the four determinism rules in [`crate::taint`], the three totality
/// rules in [`crate::totality`]).
pub const ALL_RULES: [&str; 21] = [
    NO_UNWRAP,
    FLOAT_EQ,
    UNCHECKED_INDEX,
    MUST_USE_RESULT,
    crate::scope::MASK_MUTATION_AFTER_UPLOAD,
    crate::scope::TRACER_THREADING,
    crate::dataflow::HOT_PATH_ALLOC,
    crate::dataflow::SCRATCH_BEFORE_READ,
    crate::dataflow::PATTERN_REBUILD_IN_LOOP,
    crate::locks::RAW_LOCK_UNWRAP,
    crate::locks::LOCK_ORDER,
    crate::locks::ALLOC_UNDER_LOCK,
    crate::locks::GUARD_ACROSS_SPAWN,
    crate::taint::UNSEEDED_RNG,
    crate::taint::SEED_COLLISION,
    crate::taint::WALLCLOCK_TAINT,
    crate::taint::ORDER_SENSITIVE_FOLD,
    crate::totality::PANIC_REACHABLE,
    crate::totality::ARITH_OVERFLOW,
    crate::totality::ERROR_SWALLOW,
    STALE_ALLOW,
];

/// One-line description of a rule, for `subfed-lint rules`.
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        NO_UNWRAP => {
            "unwrap()/expect()/panic!/todo!/unimplemented! in library code; \
             propagate a typed error or justify with an allow comment"
        }
        FLOAT_EQ => {
            "== or != against a float literal; NaN never compares equal, use \
             total_cmp/epsilon or an is-kept helper for mask bits"
        }
        UNCHECKED_INDEX => {
            "direct indexing of a mask/param/weight buffer; prefer iterators \
             or zip so length conformance is checked once, not per access"
        }
        MUST_USE_RESULT => "pub fn returning Result should carry #[must_use]",
        rule if rule == crate::scope::MASK_MUTATION_AFTER_UPLOAD => {
            "a client mask is mutated after the round's Upload emission in \
             engine/algorithm code; the traced byte count no longer matches"
        }
        rule if rule == crate::scope::TRACER_THREADING => {
            "pub engine/algorithm fn takes &mut model/mask state but no \
             Tracer; new code paths through it dodge observability"
        }
        rule if rule == crate::dataflow::HOT_PATH_ALLOC => {
            "Vec::new/vec!/.clone()/.to_vec()/.collect() in code reachable \
             from a hot entry point; hoist to setup or use the Workspace"
        }
        rule if rule == crate::dataflow::SCRATCH_BEFORE_READ => {
            "a take_scratch buffer is read before any full write; stale \
             contents leak into results — fill/copy/pack it first"
        }
        rule if rule == crate::dataflow::PATTERN_REBUILD_IN_LOOP => {
            "RowPattern/RectPattern built inside a loop on the hot path; \
             patterns are once-per-round artifacts, build at install time"
        }
        rule if rule == crate::locks::RAW_LOCK_UNWRAP => {
            "a lock result meets a bare .unwrap()/.expect(); route it \
             through subfed_metrics::sync::lock_unpoisoned instead"
        }
        rule if rule == crate::locks::LOCK_ORDER => {
            "a cycle in the derived lock-order graph; interleaved threads \
             can deadlock — pick one global acquisition order"
        }
        rule if rule == crate::locks::ALLOC_UNDER_LOCK => {
            "an allocation (direct or through a call) while a lock guard \
             is live; shrink the critical section"
        }
        rule if rule == crate::locks::GUARD_ACROSS_SPAWN => {
            "a guard held across spawn/thread::scope, a join()/recv(), or \
             a loop acquiring another lock; release the guard first"
        }
        rule if rule == crate::taint::UNSEEDED_RNG => {
            "an RNG seeded from OS entropy, the wall clock, or a value \
             with no seed provenance; derive every stream from the run seed"
        }
        rule if rule == crate::taint::SEED_COLLISION => {
            "two RNG constructions share one literal seed (normalized, so \
             0x2A collides with 42); their streams are perfectly correlated"
        }
        rule if rule == crate::taint::WALLCLOCK_TAINT => {
            "Instant/SystemTime::now() outside the Span stopwatch; clock \
             values taint whatever they reach and diverge between runs"
        }
        rule if rule == crate::taint::ORDER_SENSITIVE_FOLD => {
            "a lock-taking, spawn-reachable function accumulates floats; \
             arrival order decides the sum — fold in slot order instead"
        }
        rule if rule == crate::totality::PANIC_REACHABLE => {
            "a panic source (panicking macro, unwrap/expect, bare indexing, \
             non-literal division) is reachable from a total entry point"
        }
        rule if rule == crate::totality::ARITH_OVERFLOW => {
            "unchecked +/*/<< on byte-length or index math reachable from a \
             total entry point; use checked_*/saturating_* arithmetic"
        }
        rule if rule == crate::totality::ERROR_SWALLOW => {
            "a *Error-carrying Result discarded via `let _ =` or `.ok()` \
             outside tests; handle or propagate the error"
        }
        STALE_ALLOW => {
            "a `// lint: allow(…)` comment that suppresses no finding; \
             remove it so suppressions stay justified"
        }
        _ => "unknown rule",
    }
}

/// One reported hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path label the caller supplied (usually workspace-relative).
    pub file: String,
    /// 1-based line of the hazard.
    pub line: usize,
    /// Rule id (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Human-readable description of this occurrence.
    pub message: String,
    /// Whether a `// lint: allow(…)` comment suppresses it.
    pub suppressed: bool,
}

impl Finding {
    /// `path:line: [rule] message` — the text-format render.
    pub fn render(&self) -> String {
        let mark = if self.suppressed { " (allowed)" } else { "" };
        format!("{}:{}: [{}] {}{}", self.file, self.line, self.rule, self.message, mark)
    }

    /// One JSON object per finding, for `--format json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\",\"suppressed\":{}}}",
            escape_json(&self.file),
            self.line,
            self.rule,
            escape_json(&self.message),
            self.suppressed
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Analyzes one file's source, returning all findings (suppressed ones
/// included, flagged). `skip_entirely` short-circuits files that are
/// test-only modules of their crate.
pub fn analyze_source(file_label: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let test_ranges = test_module_ranges(&lexed.tokens);
    let mut findings = Vec::new();
    let in_tests = |idx: usize| test_ranges.iter().any(|&(lo, hi)| idx >= lo && idx <= hi);

    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if in_tests(i) {
            continue;
        }
        check_no_unwrap(file_label, toks, i, &mut findings);
        check_float_eq(file_label, toks, i, &mut findings);
        check_unchecked_index(file_label, toks, i, &mut findings);
        check_must_use(file_label, toks, i, &mut findings);
    }
    if crate::scope::applies_to(file_label) {
        findings.extend(crate::scope::scope_rules(file_label, toks, &test_ranges));
    }

    for f in &mut findings {
        f.suppressed = lexed.allows.iter().any(|a| {
            (a.line == f.line || a.line + 1 == f.line) && a.rules.iter().any(|r| r == f.rule)
        });
    }

    // Stale-suppression audit: every allow directive must still earn its
    // keep by silencing at least one real finding at its site. Directives
    // inside `#[cfg(test)] mod` blocks are exempt (their findings were
    // never computed), and `stale-allow` findings are appended after the
    // suppression pass, so they can never be allowed away.
    let test_lines: Vec<(usize, usize)> =
        test_ranges.iter().map(|&(lo, hi)| (toks[lo].line, toks[hi].line)).collect();
    for a in &lexed.allows {
        if test_lines.iter().any(|&(lo, hi)| a.line >= lo && a.line <= hi) {
            continue;
        }
        for rule in &a.rules {
            // Directives for the dataflow rules are judged by `subfed-lint
            // analyze` (which computes the findings they could suppress),
            // not here.
            if crate::dataflow::ANALYZE_RULES.contains(&rule.as_str()) {
                continue;
            }
            let earns_keep = findings
                .iter()
                .any(|f| f.rule == rule.as_str() && (a.line == f.line || a.line + 1 == f.line));
            if !earns_keep {
                findings.push(Finding {
                    file: file_label.to_string(),
                    line: a.line,
                    rule: STALE_ALLOW,
                    message: format!(
                        "allow({rule}) suppresses nothing here; remove the stale directive"
                    ),
                    suppressed: false,
                });
            }
        }
    }
    findings
}

pub(crate) fn ident(t: &Token) -> Option<&str> {
    match &t.kind {
        TokenKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn punct(t: &Token) -> Option<char> {
    match t.kind {
        TokenKind::Punct(c) => Some(c),
        _ => None,
    }
}

/// Token-index ranges covered by `#[cfg(test)] mod … { … }` blocks.
pub(crate) fn test_module_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            let mut j = i + 7; // past `#[cfg(test)]`
                               // Skip further attributes between the cfg and the item.
            while toks.get(j).and_then(punct) == Some('#')
                && toks.get(j + 1).and_then(punct) == Some('[')
            {
                j = skip_attr(toks, j);
            }
            // `mod name { … }` (a `mod name;` declaration has no body here).
            if toks.get(j).and_then(ident) == Some("mod") && j + 2 < toks.len() {
                let k = j + 2;
                if punct(&toks[k]) == Some('{') {
                    let close = matching_brace(toks, k);
                    out.push((i, close));
                    i = close + 1;
                    continue;
                } else if punct(&toks[k]) == Some(';') {
                    // Declaration form: the module lives in another file;
                    // the walker resolves it (see `cfg_test_mod_decls`).
                    i = k + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Whether tokens at `i` spell exactly `#[cfg(test)]`.
fn is_cfg_test_attr(toks: &[Token], i: usize) -> bool {
    i + 6 < toks.len()
        && punct(&toks[i]) == Some('#')
        && punct(&toks[i + 1]) == Some('[')
        && ident(&toks[i + 2]) == Some("cfg")
        && punct(&toks[i + 3]) == Some('(')
        && ident(&toks[i + 4]) == Some("test")
        && punct(&toks[i + 5]) == Some(')')
        && punct(&toks[i + 6]) == Some(']')
}

/// Names of modules declared `#[cfg(test)] mod name;` — their backing
/// files are entirely test code.
pub fn cfg_test_mod_decls(source: &str) -> Vec<String> {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            let mut j = i + 7;
            // Tolerate visibility and further attributes before `mod`.
            loop {
                if j >= toks.len() {
                    break;
                }
                if punct(&toks[j]) == Some('#')
                    && j + 1 < toks.len()
                    && punct(&toks[j + 1]) == Some('[')
                {
                    j = skip_attr(toks, j);
                } else if ident(&toks[j]) == Some("pub") {
                    j += 1;
                    if j < toks.len() && punct(&toks[j]) == Some('(') {
                        while j < toks.len() && punct(&toks[j]) != Some(')') {
                            j += 1;
                        }
                        j += 1;
                    }
                } else {
                    break;
                }
            }
            if j + 2 < toks.len()
                && ident(&toks[j]) == Some("mod")
                && punct(&toks[j + 2]) == Some(';')
            {
                if let Some(name) = ident(&toks[j + 1]) {
                    out.push(name.to_string());
                }
            }
        }
        i += 1;
    }
    out
}

/// Index just past a `#[…]` attribute starting at `i` (which must point
/// at the `#`).
fn skip_attr(toks: &[Token], i: usize) -> usize {
    let mut depth = 0;
    let mut j = i + 1;
    while j < toks.len() {
        match punct(&toks[j]) {
            Some('[') => depth += 1,
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index of the `}` matching the `{` at `open`.
pub(crate) fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match punct(t) {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

fn check_no_unwrap(file: &str, toks: &[Token], i: usize, out: &mut Vec<Finding>) {
    let Some(name) = ident(&toks[i]) else { return };
    let prev = i.checked_sub(1).map(|p| &toks[p]);
    let next = toks.get(i + 1);
    if (name == "unwrap" || name == "expect")
        && prev.and_then(punct) == Some('.')
        && next.and_then(punct) == Some('(')
    {
        out.push(Finding {
            file: file.to_string(),
            line: toks[i].line,
            rule: NO_UNWRAP,
            message: format!(".{name}() can panic; propagate a typed error instead"),
            suppressed: false,
        });
    } else if PANIC_MACROS.contains(&name) && next.and_then(punct) == Some('!') {
        // `debug_assert!`-style macros and `#[should_panic]` are fine;
        // only the direct macros are flagged.
        out.push(Finding {
            file: file.to_string(),
            line: toks[i].line,
            rule: NO_UNWRAP,
            message: format!("{name}! in library code; return an error or justify"),
            suppressed: false,
        });
    }
}

fn check_float_eq(file: &str, toks: &[Token], i: usize, out: &mut Vec<Finding>) {
    // `==` lexes as two '=' puncts; `!=` as '!' then '='. `<=`/`>=`
    // carry only one '=' so neither pattern fires on them.
    let two = |a: usize| toks.get(a).and_then(punct);
    let op = if two(i) == Some('=') && two(i + 1) == Some('=') {
        // Not the tail of `<=`, `>=`, `!=`, `+=`, … (their '=' is consumed
        // as the second token of this window only when i-1 is the operator
        // head, which the float check below can't produce), and not a
        // `===` fragment.
        if i > 0 && matches!(two(i - 1), Some('=') | Some('!') | Some('<') | Some('>')) {
            return;
        }
        Some(("==", i))
    } else if two(i) == Some('!') && two(i + 1) == Some('=') {
        Some(("!=", i))
    } else {
        None
    };
    let Some((op, at)) = op else { return };
    let lhs_float = at > 0 && toks[at - 1].kind == TokenKind::Float;
    let rhs_float = toks.get(at + 2).map(|t| t.kind == TokenKind::Float).unwrap_or(false);
    if lhs_float || rhs_float {
        out.push(Finding {
            file: file.to_string(),
            line: toks[at].line,
            rule: FLOAT_EQ,
            message: format!(
                "float `{op}` comparison; NaN-unsafe — use total_cmp, an epsilon, \
                 or a mask-bit helper"
            ),
            suppressed: false,
        });
    }
}

/// Buffer names whose direct indexing the rule flags.
///
/// Singular names only: in this workspace `mask`/`params`/`weights`/`grads`
/// are flat `f32` buffers whose length must match a model layout, while the
/// plural `masks` is a per-client `Vec<ModelMask>` indexed by client id —
/// a domain the round loop establishes once, not a shape-conformance risk.
fn is_guarded_buffer_name(name: &str) -> bool {
    matches!(name, "mask" | "params" | "weights" | "grads")
        || name.ends_with("_mask")
        || name.ends_with("_params")
        || name.ends_with("_weights")
}

fn check_unchecked_index(file: &str, toks: &[Token], i: usize, out: &mut Vec<Finding>) {
    let Some(name) = ident(&toks[i]) else { return };
    if !is_guarded_buffer_name(name) {
        return;
    }
    if toks.get(i + 1).and_then(punct) != Some('[') {
        return;
    }
    // `foo[…]` right after a '.' is a field access on another value —
    // still an index, still flagged. But `use mask[` can't occur, and
    // attribute paths never index, so no further filtering is needed.
    out.push(Finding {
        file: file.to_string(),
        line: toks[i].line,
        rule: UNCHECKED_INDEX,
        message: format!(
            "unchecked index into `{name}`; iterate/zip instead so shape \
             conformance is checked once"
        ),
        suppressed: false,
    });
}

fn check_must_use(file: &str, toks: &[Token], i: usize, out: &mut Vec<Finding>) {
    if ident(&toks[i]) != Some("pub") {
        return;
    }
    // pub | pub(crate) | pub(super) …, then qualifiers, then `fn name`.
    let mut j = i + 1;
    if toks.get(j).and_then(punct) == Some('(') {
        while j < toks.len() && punct(&toks[j]) != Some(')') {
            j += 1;
        }
        j += 1;
    }
    while matches!(
        toks.get(j).and_then(ident),
        Some("const") | Some("unsafe") | Some("async") | Some("extern")
    ) {
        j += 1;
        if toks.get(j).map(|t| t.kind == TokenKind::Str).unwrap_or(false) {
            j += 1; // extern "C"
        }
    }
    if toks.get(j).and_then(ident) != Some("fn") {
        return;
    }
    let Some(name_tok) = toks.get(j + 1) else { return };
    let fn_line = name_tok.line;
    let Some(fn_name) = ident(name_tok) else { return };

    // Find `-> … {` at signature level and look for `Result` in the
    // return type.
    let mut k = j + 2;
    let mut depth = 0i32;
    let mut arrow = None;
    while k < toks.len() {
        match punct(&toks[k]) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some('-') if depth == 0 && toks.get(k + 1).and_then(punct) == Some('>') => {
                arrow = Some(k + 2);
                break;
            }
            Some('{') | Some(';') if depth == 0 => break,
            _ => {}
        }
        k += 1;
    }
    let Some(ret_start) = arrow else { return };
    let mut returns_result = false;
    let mut k = ret_start;
    let mut angle = 0i32;
    while k < toks.len() {
        match &toks[k].kind {
            TokenKind::Punct('{') | TokenKind::Punct(';') if angle == 0 => break,
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Ident(s) if s == "Result" => {
                returns_result = true;
            }
            TokenKind::Ident(s) if s == "where" && angle == 0 => break,
            _ => {}
        }
        k += 1;
    }
    if !returns_result {
        return;
    }
    // Walk attributes immediately above: contiguous `#[…]` groups before
    // the `pub`.
    if has_preceding_must_use(toks, i) {
        return;
    }
    out.push(Finding {
        file: file.to_string(),
        line: fn_line,
        rule: MUST_USE_RESULT,
        message: format!("pub fn `{fn_name}` returns Result but lacks #[must_use]"),
        suppressed: false,
    });
}

fn has_preceding_must_use(toks: &[Token], mut i: usize) -> bool {
    // Scan backwards over contiguous attribute groups `#[…]`.
    while i > 0 {
        if punct(&toks[i - 1]) != Some(']') {
            return false;
        }
        // Find the matching `[` then the `#` before it.
        let mut depth = 0;
        let mut j = i - 1;
        loop {
            match punct(&toks[j]) {
                Some(']') => depth += 1,
                Some('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
        if j == 0 || punct(&toks[j - 1]) != Some('#') {
            return false;
        }
        if toks[j..i].iter().any(|t| ident(t) == Some("must_use")) {
            return true;
        }
        i = j - 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unsuppressed(src: &str) -> Vec<Finding> {
        analyze_source("fixture.rs", src).into_iter().filter(|f| !f.suppressed).collect()
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); todo!(); }";
        let fs = unsuppressed(src);
        assert_eq!(fs.len(), 4);
        assert!(fs.iter().all(|f| f.rule == NO_UNWRAP));
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); x.unwrap_or_default(); }";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn debug_assert_and_should_panic_are_not_flagged() {
        let src = "#[should_panic(expected = \"boom\")]\nfn f() { debug_assert!(x > 0); assert_eq!(a, b); }";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { x.unwrap(); panic!(); }\n}\nfn lib2() { y.unwrap(); }";
        let fs = unsuppressed(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 7);
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let src = "fn f() {\n  x.unwrap(); // lint: allow(no-unwrap)\n  // lint: allow(no-unwrap)\n  y.unwrap();\n  z.unwrap();\n}";
        let all = analyze_source("fixture.rs", src);
        let suppressed: Vec<_> = all.iter().filter(|f| f.suppressed).collect();
        let live: Vec<_> = all.iter().filter(|f| !f.suppressed).collect();
        assert_eq!(suppressed.len(), 2);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].line, 5);
    }

    #[test]
    fn allow_of_other_rule_does_not_suppress() {
        let src = "fn f() { x.unwrap(); } // lint: allow(float-eq)";
        let fs = unsuppressed(src);
        // The unwrap stays live, and the useless directive is itself
        // flagged by the stale-suppression audit.
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().any(|f| f.rule == NO_UNWRAP));
        assert!(fs.iter().any(|f| f.rule == STALE_ALLOW));
    }

    #[test]
    fn stale_allow_is_flagged_and_live_allow_is_not() {
        let src = "fn f() {\n  x.unwrap(); // lint: allow(no-unwrap)\n  y.ok(); // lint: allow(no-unwrap)\n}";
        let fs = unsuppressed(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, STALE_ALLOW);
        assert_eq!(fs[0].line, 3);
        assert!(fs[0].message.contains("allow(no-unwrap)"));
    }

    #[test]
    fn stale_allow_cannot_be_suppressed() {
        let src = "fn f() {\n  // lint: allow(stale-allow)\n  x.ok(); // lint: allow(no-unwrap)\n}";
        let fs = unsuppressed(src);
        // Both directives are stale: the first allows a rule that never
        // fires (and could not be silenced even by itself), the second
        // covers a line with no finding.
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == STALE_ALLOW));
    }

    #[test]
    fn allow_of_unknown_rule_is_stale() {
        let src = "fn f() { x.ok(); } // lint: allow(no-such-rule)";
        let fs = unsuppressed(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, STALE_ALLOW);
    }

    #[test]
    fn allow_inside_cfg_test_module_is_exempt_from_the_audit() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() {\n    x.unwrap(); // lint: allow(no-unwrap)\n  }\n}";
        // The directive suppresses nothing (test findings are never
        // computed) but sits inside the test module, so it is not stale.
        assert!(unsuppressed(src).is_empty(), "{:?}", unsuppressed(src));
    }

    #[test]
    fn float_eq_flags_literal_comparisons() {
        let src = "fn f() { if a == 0.5 { } if 1e-4 != b { } }";
        let fs = unsuppressed(src);
        assert_eq!(fs.len(), 2);
        assert!(fs.iter().all(|f| f.rule == FLOAT_EQ));
    }

    #[test]
    fn float_ordering_comparisons_are_fine() {
        let src = "fn f() { if a >= 0.5 { } if b < 1e-4 { } if c <= 2.0 { } }";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn integer_equality_is_fine() {
        let src = "fn f() { if a == 3 { } if n != 0 { } if s == \"x\" { } }";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn unchecked_index_flags_mask_buffers() {
        let src = "fn f() { let v = mask[i]; let w = flat_mask[j]; let p = params[0]; }";
        let fs = unsuppressed(src);
        assert_eq!(fs.len(), 3);
        assert!(fs.iter().all(|f| f.rule == UNCHECKED_INDEX));
    }

    #[test]
    fn other_buffers_and_methods_are_fine() {
        let src = "fn f() { let v = out[i]; mask.iter(); masked[i]; mask.get(i); }";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn must_use_flags_pub_result_fn() {
        let src = "pub fn parse(s: &str) -> Result<u32, E> { todo() }\n#[must_use]\npub fn ok(s: &str) -> Result<u32, E> { todo() }\nfn private() -> Result<u32, E> { todo() }\npub fn plain() -> u32 { 0 }";
        let fs = unsuppressed(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, MUST_USE_RESULT);
        assert!(fs[0].message.contains("`parse`"));
    }

    #[test]
    fn must_use_sees_through_doc_and_other_attrs() {
        let src = "#[must_use]\n#[inline]\npub fn f() -> Result<(), E> { Ok(()) }";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn must_use_handles_pub_crate_and_generics() {
        let src = "pub(crate) fn g<T: Ord>(x: Vec<T>) -> Result<T, ()> { todo() }";
        let fs = unsuppressed(src);
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn result_in_argument_position_is_not_flagged() {
        let src = "pub fn h(r: Result<u8, ()>) -> u8 { 0 }";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn cfg_test_mod_decl_detection() {
        let src = "#[cfg(test)]\npub(crate) mod tests_support;\nmod real;\n";
        assert_eq!(cfg_test_mod_decls(src), vec!["tests_support".to_string()]);
    }

    #[test]
    fn findings_render_and_serialise() {
        let f = Finding {
            file: "a.rs".into(),
            line: 3,
            rule: NO_UNWRAP,
            message: "msg with \"quotes\"".into(),
            suppressed: false,
        };
        assert_eq!(f.render(), "a.rs:3: [no-unwrap] msg with \"quotes\"");
        assert!(f.to_json().contains("\\\"quotes\\\""));
    }
}
