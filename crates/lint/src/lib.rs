//! # subfed-lint
//!
//! In-repo static analysis for the Sub-FedAvg workspace: a dependency-free
//! Rust lexer plus a rule engine that reports federated-learning-specific
//! hazards the compiler cannot see.
//!
//! | Rule | Hazard |
//! |---|---|
//! | `no-unwrap` | `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code — one client's malformed update must not abort the federation |
//! | `float-eq` | `==`/`!=` against float literals — a NaN accuracy or Δ silently falls through every equality gate |
//! | `unchecked-index` | direct `buf[i]` indexing of mask/param/weight buffers — shape conformance should be checked once, not per access |
//! | `must-use-result` | `pub fn … -> Result` without `#[must_use]` — dropped errors are how masks and models drift apart |
//!
//! Suppress an intentional occurrence with `// lint: allow(rule-id)` on
//! the same line or the line above. Rule catalog, allow syntax, and CI
//! wiring: `docs/STATIC_ANALYSIS.md`.
//!
//! Run it with `cargo run -p subfed-lint -- check`.

pub mod lexer;
pub mod rules;
pub mod walk;

pub use rules::{analyze_source, Finding, ALL_RULES};
pub use walk::{check_workspace, find_workspace_root, Report, TARGET_CRATES};
