//! # subfed-lint
//!
//! In-repo analysis for the Sub-FedAvg workspace, in two halves:
//!
//! * **`check`** — dependency-free static analysis: a Rust lexer
//!   ([`lexer`]) plus a rule engine ([`rules`], [`scope`]) that reports
//!   federated-learning-specific hazards the compiler cannot see;
//! * **`analyze`** — dataflow-powered hot-path and concurrency
//!   analysis: a lightweight parser ([`parser`]), a workspace-wide call
//!   graph with hot-entry reachability ([`callgraph`]), the dataflow
//!   rules ([`dataflow`]) that defend the PR-4 performance contracts,
//!   bottom-up function summaries ([`summaries`]), the interprocedural
//!   lock-order / held-region rules ([`locks`]), the determinism
//!   taint rules ([`taint`]) that defend the replay-identity gate, and
//!   the totality rules ([`totality`]) that prove the decode→fold spine
//!   panic-free;
//! * **`certify`** — the totality walk condensed into a per-entry
//!   panic-freedom certificate ([`totality::certify`]), diffed in CI
//!   against the committed `CERTIFIED.json`;
//! * **`conform`** — an offline protocol verifier: an executable
//!   state-machine spec of the federation round ([`spec`]) replayed over
//!   JSONL traces ([`conform`]).
//!
//! | Rule | Hazard |
//! |---|---|
//! | `no-unwrap` | `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code — one client's malformed update must not abort the federation |
//! | `float-eq` | `==`/`!=` against float literals — a NaN accuracy or Δ silently falls through every equality gate |
//! | `unchecked-index` | direct `buf[i]` indexing of mask/param/weight buffers — shape conformance should be checked once, not per access |
//! | `must-use-result` | `pub fn … -> Result` without `#[must_use]` — dropped errors are how masks and models drift apart |
//! | `mask-mutation-after-upload` | *(scope-aware)* a client mask mutated after the upload was charged — trace and state disagree |
//! | `tracer-threading` | *(scope-aware)* `pub fn` taking `&mut` model/mask state but no `Tracer` — an observability hole |
//! | `hot-path-alloc` | *(dataflow)* an allocation in code reachable from a hot entry point — per-batch allocator traffic |
//! | `scratch-before-read` | *(dataflow)* a `take_scratch` buffer read before any full write — stale contents leak into results |
//! | `pattern-rebuild-in-loop` | *(dataflow)* `RowPattern`/`RectPattern` built inside a hot loop — a once-per-round artifact paid per batch |
//! | `raw-lock-unwrap` | *(concurrency)* `.lock().unwrap()` and friends — poisoning policy must flow through `subfed_metrics::sync`, not panic |
//! | `lock-order` | *(concurrency)* a cycle in the workspace lock-order graph — two threads interleaving the witness chains can deadlock |
//! | `alloc-under-lock` | *(concurrency)* an allocation (direct or via a callee) inside a critical section — lock hold times balloon under contention |
//! | `guard-across-spawn` | *(concurrency)* a guard held across `spawn`/`thread::scope`/`join()`/`recv()` or a lock-acquiring loop — workers contend on or deadlock against the held lock |
//! | `unseeded-rng` | *(determinism)* an RNG seeded from OS entropy, the wall clock, or a value with no seed provenance — the run cannot replay |
//! | `seed-collision` | *(determinism)* two RNG constructions sharing one literal seed — "independent" streams are perfectly correlated |
//! | `wallclock-taint` | *(determinism)* `Instant::now()`/`SystemTime::now()` outside the `Span` stopwatch — clock values diverge between runs |
//! | `order-sensitive-fold` | *(determinism)* a lock-taking, spawn-reachable float accumulation — arrival order decides the f32 sum |
//! | `panic-reachable` | *(totality)* a panic source (panicking macro, `unwrap`/`expect`, bare indexing, non-literal division) reachable from a total entry point — adversarial bytes must meet a typed error, never an abort |
//! | `arith-overflow` | *(totality)* unchecked `+`/`*`/`<<` on byte-length/index math on a total path — a wrapped length turns into an under-allocation or out-of-bounds slice |
//! | `error-swallow` | *(totality)* a `*Error`-carrying `Result` discarded with `let _ =` or `.ok()` outside tests — the error path exists but nobody walks it |
//! | `stale-allow` | a `// lint: allow(…)` comment that no longer suppresses anything |
//!
//! Suppress an intentional occurrence with `// lint: allow(rule-id)` on
//! the same line or the line above (stale allows are themselves flagged).
//! Rule catalog, allow syntax, and CI wiring: `docs/STATIC_ANALYSIS.md`.
//! The round-protocol spec and its predicate table: `docs/PROTOCOL.md`.
//!
//! Run it with `cargo run -p subfed-lint -- check`,
//! `cargo run -p subfed-lint -- analyze`,
//! `cargo run -p subfed-lint -- certify`, or
//! `cargo run -p subfed-lint -- conform trace.jsonl`.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod callgraph;
pub mod conform;
pub mod dataflow;
pub mod lexer;
pub mod locks;
pub mod parser;
pub mod rules;
pub mod scope;
pub mod spec;
pub mod summaries;
pub mod taint;
pub mod totality;
pub mod walk;

pub use analyze::{analyze_sources, analyze_workspace};
pub use conform::{verify_events, verify_reader, verify_replay_pair, ConformReport};
pub use dataflow::ANALYZE_RULES;
pub use locks::{lock_findings, LockGraph};
pub use rules::{analyze_source, Finding, ALL_RULES};
pub use spec::{replay_identity, ProtocolSpec, Violation};
pub use summaries::Summaries;
pub use totality::{
    certify, certify_workspace, render_certificates_json, totality_findings, EntryCertificate,
    TOTAL_ENTRIES,
};
pub use walk::{
    check_workspace, crate_sources, find_workspace_root, Report, ANALYZE_CRATES, TARGET_CRATES,
};
