//! Determinism taint analysis: the four nondeterminism rules of
//! `subfed-lint analyze`.
//!
//! The replay-identity gate (`subfed-lint conform run-a.jsonl
//! run-b.jsonl`) demands that two runs of the same federation produce
//! bit-identical models and canonical traces. These rules reject the
//! source patterns that break that promise *before* the gate ever sees a
//! divergent trace, by tracking where nondeterminism enters and where it
//! can reach:
//!
//! * [`UNSEEDED_RNG`] — a random stream whose seed has no provenance:
//!   `from_entropy()`/`thread_rng()` (OS entropy), a seed derived from
//!   the wall clock, or a `SeededRng::new(…)`/`seed_from_u64(…)` whose
//!   argument mentions no seed-named value. Every draw from such a
//!   stream differs between runs.
//! * [`SEED_COLLISION`] — two non-test RNG constructions sharing one
//!   literal seed (normalized, so `0x2A` collides with `42`). The
//!   streams are identical, so "independent" noise, init, or sampling
//!   decisions become perfectly correlated — a silent statistics bug the
//!   replay gate cannot see because it reproduces bit-for-bit.
//! * [`WALLCLOCK_TAINT`] — an `Instant::now()`/`SystemTime::now()` read
//!   in library code outside the sanctioned stopwatch
//!   (`subfed_metrics::trace::Span`, whose `us` payloads the trace
//!   canonicalizer zeroes). Wall-clock values taint everything computed
//!   from them, and anything tainted that reaches a trace field or a
//!   control decision diverges between runs.
//! * [`ORDER_SENSITIVE_FOLD`] — a function that takes a lock, is
//!   reachable from a spawning function (so it runs on worker threads),
//!   and directly or transitively accumulates floats (`*s += …`,
//!   `buf[i] += …`, `x += 1.0`). f32 addition is not associative, so
//!   whichever worker wins the lock decides the result — the
//!   arrival-order fold the `OrderedAccumulator` turnstile exists to
//!   prevent. A body that waits for its turn first (calls a
//!   `wait`-prefixed function, e.g. `wait_unpoisoned`) is the turnstile
//!   idiom itself and is exempt.
//!
//! Findings carry witness chains in the [`crate::summaries::Fact`]
//! style: the concrete accumulation site and the call path that reaches
//! it, plus the lock identity and the spawning function, so a reader can
//! replay why the fold is order-sensitive without re-deriving the graph.
//! Test modules are skipped throughout — tests may pin literal seeds and
//! time things freely. The standard `// lint: allow(rule)` escape hatch
//! applies, audited for staleness like every analyze-side rule.

use crate::callgraph::{CallGraph, SourceFile};
use crate::lexer::{Token, TokenKind};
use crate::parser::{call_sites, CallSite, FnDef};
use crate::rules::{ident, punct, Finding};
use crate::summaries::{Fact, Summaries};

/// Identifier of the entropy-/clock-/provenance-free-seed rule.
pub const UNSEEDED_RNG: &str = "unseeded-rng";
/// Identifier of the duplicate-literal-seed rule.
pub const SEED_COLLISION: &str = "seed-collision";
/// Identifier of the wall-clock-read rule.
pub const WALLCLOCK_TAINT: &str = "wallclock-taint";
/// Identifier of the concurrent-float-accumulation rule.
pub const ORDER_SENSITIVE_FOLD: &str = "order-sensitive-fold";

/// Idents whose presence in a seed expression marks it wall-clock
/// derived: constructing a "seeded" RNG from the clock is entropy with
/// extra steps.
const TIME_TAINT_IDENTS: [&str; 9] = [
    "Instant",
    "SystemTime",
    "UNIX_EPOCH",
    "now",
    "elapsed",
    "as_nanos",
    "as_micros",
    "as_millis",
    "subsec_nanos",
];

/// Runs the four determinism rules over the parsed workspace.
/// Suppression is the caller's job (it needs the per-file allow
/// directives).
pub fn taint_findings(
    files: &[SourceFile],
    graph: &CallGraph,
    summaries: &Summaries,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut literal_seeds: Vec<SeedSite> = Vec::new();
    for file in files {
        for def in &file.defs {
            if file.in_tests(def.item.name_idx) {
                continue;
            }
            check_rng_sources(file, def, &mut out, &mut literal_seeds);
            check_wallclock(file, def, &mut out);
        }
    }
    check_seed_collisions(&literal_seeds, &mut out);
    check_order_sensitive_folds(files, graph, summaries, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// One non-test RNG construction seeded by a bare integer literal.
struct SeedSite {
    value: u64,
    file: String,
    line: usize,
    fn_name: String,
}

/// How one RNG-constructing call site classifies.
enum SeedKind {
    /// OS entropy — nondeterministic by construction.
    Entropy(&'static str),
    /// The seed expression mentions the wall clock.
    Clock,
    /// The seed expression mentions a seed-named value or a derivation
    /// helper: provenance established.
    Derived,
    /// The seed is a single integer literal (recorded for collisions).
    Literal(u64),
    /// Anything else: no visible seed provenance.
    Opaque,
}

/// Flags entropy- and provenance-free RNG constructions and records
/// literal seeds for the collision pass.
fn check_rng_sources(
    file: &SourceFile,
    def: &FnDef,
    out: &mut Vec<Finding>,
    literal_seeds: &mut Vec<SeedSite>,
) {
    let Some((open, close)) = def.item.body else { return };
    let toks = &file.lexed.tokens;
    for call in call_sites(toks, open, close) {
        let Some(kind) = classify_rng_call(toks, &call, close) else { continue };
        let fn_name = &def.item.name;
        match kind {
            SeedKind::Entropy(shape) => out.push(Finding {
                file: file.label.clone(),
                line: call.line,
                rule: UNSEEDED_RNG,
                message: format!(
                    "{shape} seeds from OS entropy in `{fn_name}`; every run draws a \
                     different stream — construct a `SeededRng` from the run seed \
                     (per client/round: derive with `round_seed`-style mixing)"
                ),
                suppressed: false,
            }),
            SeedKind::Clock => out.push(Finding {
                file: file.label.clone(),
                line: call.line,
                rule: UNSEEDED_RNG,
                message: format!(
                    "`{}` in `{fn_name}` derives its seed from the wall clock; that is \
                     entropy with extra steps — derive it from the run seed instead",
                    rendered_ctor(&call)
                ),
                suppressed: false,
            }),
            SeedKind::Opaque => out.push(Finding {
                file: file.label.clone(),
                line: call.line,
                rule: UNSEEDED_RNG,
                message: format!(
                    "`{}` in `{fn_name}` takes a seed with no visible provenance; \
                     thread the run seed (or a value derived from it) through so the \
                     stream replays",
                    rendered_ctor(&call)
                ),
                suppressed: false,
            }),
            SeedKind::Literal(value) => literal_seeds.push(SeedSite {
                value,
                file: file.label.clone(),
                line: call.line,
                fn_name: fn_name.clone(),
            }),
            SeedKind::Derived => {}
        }
    }
}

/// `SeededRng::new` / `StdRng::seed_from_u64` rendered for messages.
fn rendered_ctor(call: &CallSite) -> String {
    match call.qualifier.as_deref() {
        Some(q) => format!("{q}::{}(…)", call.callee),
        None => format!("{}(…)", call.callee),
    }
}

/// Classifies a call site as an RNG construction, or `None` when it is
/// not one.
fn classify_rng_call(toks: &[Token], call: &CallSite, close: usize) -> Option<SeedKind> {
    match call.callee.as_str() {
        "from_entropy" => return Some(SeedKind::Entropy("`from_entropy()`")),
        "thread_rng" => return Some(SeedKind::Entropy("`thread_rng()`")),
        "new" if call.qualifier.as_deref() == Some("SeededRng") => {}
        "seed_from_u64" => {}
        _ => return None,
    }
    // The argument span: call_sites guarantees `(` directly after the
    // name (these constructors never take a turbofish).
    if punct_at(toks, call.idx + 1) != Some('(') {
        return None;
    }
    let args_close = matching_paren(toks, call.idx + 1).min(close);
    let lo = call.idx + 2;
    if lo >= args_close {
        return Some(SeedKind::Opaque); // no argument at all
    }
    let args = &toks[lo..args_close];
    if args.iter().any(|t| ident(t).is_some_and(|s| TIME_TAINT_IDENTS.contains(&s))) {
        return Some(SeedKind::Clock);
    }
    if args.iter().any(|t| {
        ident(t).is_some_and(|s| s.to_ascii_lowercase().contains("seed") || s.starts_with("derive"))
    }) {
        return Some(SeedKind::Derived);
    }
    if args.len() == 1 {
        if let TokenKind::Int(v) = args[0].kind {
            return Some(SeedKind::Literal(v));
        }
    }
    Some(SeedKind::Opaque)
}

/// Flags every literal-seed site whose normalized value already
/// constructed an RNG elsewhere; the first site (in `(file, line)`
/// order) is the witness, each later twin the finding.
fn check_seed_collisions(sites: &[SeedSite], out: &mut Vec<Finding>) {
    let mut ordered: Vec<&SeedSite> = sites.iter().collect();
    ordered.sort_by(|a, b| (a.value, &a.file, a.line).cmp(&(b.value, &b.file, b.line)));
    for pair in ordered.windows(2) {
        let (first, dup) = (pair[0], pair[1]);
        if first.value != dup.value {
            continue;
        }
        // Chains (three or more sites) blame each on its predecessor,
        // which keeps one finding per duplicate site.
        out.push(Finding {
            file: dup.file.clone(),
            line: dup.line,
            rule: SEED_COLLISION,
            message: format!(
                "literal seed {} in `{}` already constructs an RNG at {}:{} (`{}`); \
                 the two streams are identical, so their draws are perfectly \
                 correlated — derive distinct per-use seeds from the run seed",
                dup.value, dup.fn_name, first.file, first.line, first.fn_name
            ),
            suppressed: false,
        });
    }
}

/// Flags wall-clock reads outside `impl Span` — the one sanctioned
/// stopwatch, whose `us` payloads the trace canonicalizer zeroes.
fn check_wallclock(file: &SourceFile, def: &FnDef, out: &mut Vec<Finding>) {
    if def.impl_type.as_deref() == Some("Span") {
        return;
    }
    let Some((open, close)) = def.item.body else { return };
    let toks = &file.lexed.tokens;
    for call in call_sites(toks, open, close) {
        if call.callee != "now"
            || !matches!(call.qualifier.as_deref(), Some("Instant") | Some("SystemTime"))
        {
            continue;
        }
        let qual = call.qualifier.as_deref().unwrap_or_default();
        let witness = first_tainted_use(toks, &call, open, close)
            .map(|(name, line)| {
                format!("; first use of the tainted value `{name}` is on line {line}")
            })
            .unwrap_or_default();
        out.push(Finding {
            file: file.label.clone(),
            line: call.line,
            rule: WALLCLOCK_TAINT,
            message: format!(
                "`{qual}::now()` read in `{}`; wall-clock values taint whatever they \
                 reach and diverge between runs — time spans through \
                 `subfed_metrics::trace::Span` (canonicalized away on replay) and \
                 derive decisions from the run seed{witness}",
                def.item.name
            ),
            suppressed: false,
        });
    }
}

/// The `let NAME = …now()…` binding (if any) and the line of `NAME`'s
/// first later use — the start of the taint's downstream flow.
fn first_tainted_use(
    toks: &[Token],
    call: &CallSite,
    open: usize,
    close: usize,
) -> Option<(String, usize)> {
    // Statement start: nearest `;`/`{`/`}` boundary before the call.
    let mut s = call.idx;
    while s > open {
        if matches!(punct(&toks[s - 1]), Some(';') | Some('{') | Some('}')) {
            break;
        }
        s -= 1;
    }
    let mut name = None;
    let mut k = s;
    while k < call.idx {
        if ident(&toks[k]) == Some("let") {
            let mut n = k + 1;
            if ident(&toks[n]) == Some("mut") {
                n += 1;
            }
            name = ident(&toks[n]).map(str::to_string);
        }
        k += 1;
    }
    let name = name?;
    let stmt_end = (call.idx..=close).find(|&j| punct(&toks[j]) == Some(';'))?;
    let use_line = (stmt_end..=close)
        .find(|&j| ident(&toks[j]) == Some(name.as_str()))
        .map(|j| toks[j].line)?;
    Some((name, use_line))
}

/// Flags lock-taking, spawn-reachable functions that accumulate floats —
/// the arrival-order fold — unless the body waits for its turn first.
fn check_order_sensitive_folds(
    files: &[SourceFile],
    graph: &CallGraph,
    summaries: &Summaries,
    out: &mut Vec<Finding>,
) {
    let def_of = |i: usize| {
        let n = &graph.nodes[i];
        &files[n.file].defs[n.def]
    };

    // Which functions run under a worker pool: everything reachable from
    // a function whose summary spawns (the spawner's closure body is
    // attributed to the spawner itself, so its calls are its edges).
    let mut spawn_witness: Vec<Option<String>> = vec![None; graph.nodes.len()];
    let mut queue = std::collections::VecDeque::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        if !n.in_tests && summaries.per_node[i].spawns.is_some() {
            spawn_witness[i] = Some(def_of(i).qualified());
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        let witness = spawn_witness[i].clone().unwrap_or_default();
        for &j in &graph.edges[i] {
            if spawn_witness[j].is_none() && !graph.nodes[j].in_tests {
                spawn_witness[j] = Some(witness.clone());
                queue.push_back(j);
            }
        }
    }

    // Direct float-accumulation sites, then a monotone fixpoint so the
    // witness chain descends through calls (summaries style).
    let mut accum: Vec<Option<Fact>> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            if n.in_tests {
                return None;
            }
            let file = &files[n.file];
            let def = def_of(i);
            let (open, close) = def.item.body?;
            float_accum_site(&file.lexed.tokens, open, close).map(|(line, what)| Fact {
                via: Vec::new(),
                file: file.label.clone(),
                line,
                what: what.to_string(),
            })
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..accum.len() {
            if graph.nodes[i].in_tests || accum[i].is_some() {
                continue;
            }
            for &j in &graph.edges[i] {
                let Some(fact) = &accum[j] else { continue };
                let mut via = Vec::with_capacity(fact.via.len() + 1);
                via.push(def_of(j).qualified());
                via.extend(fact.via.iter().cloned());
                accum[i] = Some(Fact {
                    via,
                    file: fact.file.clone(),
                    line: fact.line,
                    what: fact.what.clone(),
                });
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
    }

    for (i, n) in graph.nodes.iter().enumerate() {
        if n.in_tests {
            continue;
        }
        let Some(spawner) = &spawn_witness[i] else { continue };
        let Some(fact) = &accum[i] else { continue };
        let file = &files[n.file];
        let def = def_of(i);
        let acquisitions = crate::locks::fn_acquisitions(file, def);
        let Some(acq) = acquisitions.first() else { continue };
        let Some((open, close)) = def.item.body else { continue };
        // The turnstile idiom: a body that waits for its slot's turn
        // before folding (`wait_unpoisoned` et al.) serialises itself.
        let waits = call_sites(&file.lexed.tokens, open, close)
            .iter()
            .any(|c| c.callee.starts_with("wait"));
        if waits {
            continue;
        }
        out.push(Finding {
            file: file.label.clone(),
            line: acq.line,
            rule: ORDER_SENSITIVE_FOLD,
            message: format!(
                "`{}` folds floats under `{}` on a worker pool (spawn-reachable via \
                 `{spawner}`): {} — f32 addition is not associative, so whichever \
                 worker wins the lock decides the result; fold in cohort-slot order \
                 through a turnstile (wait for the slot's turn) instead",
                def.qualified(),
                acq.id,
                fact.render()
            ),
            suppressed: false,
        });
    }
}

/// The first order-sensitive float accumulation in `toks[open..=close]`:
/// `*x += …`, `buf[i] += …`, or `x += <float literal>`.
fn float_accum_site(toks: &[Token], open: usize, close: usize) -> Option<(usize, &'static str)> {
    let close = close.min(toks.len().saturating_sub(1));
    for k in open..close {
        if punct(&toks[k]) != Some('+') || punct_at(toks, k + 1) != Some('=') {
            continue;
        }
        // `a + -b`, `x ++ y` cannot occur; `+=` is unambiguous at k.
        let prev = k.checked_sub(1).map(|p| &toks[p]);
        let prev_is_ident = prev.and_then(ident).is_some();
        let prev2_deref = k >= 2 && punct(&toks[k - 2]) == Some('*');
        let what = if prev.and_then(punct) == Some(']') {
            "indexed `+=` store"
        } else if prev_is_ident && prev2_deref {
            "`*x += …` through a guard"
        } else if toks.get(k + 2).map(|t| t.kind == TokenKind::Float).unwrap_or(false) {
            "`+=` of a float literal"
        } else {
            continue;
        };
        return Some((toks[k].line, what));
    }
    None
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    toks.get(i).and_then(punct)
}

fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match punct(t) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_sources;

    fn findings(src: &str) -> Vec<Finding> {
        analyze_sources(&[("fixture.rs".to_string(), src.to_string())])
            .into_iter()
            .filter(|f| !f.suppressed)
            .collect()
    }

    fn rules_of(fs: &[Finding]) -> Vec<&'static str> {
        fs.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn entropy_and_opaque_seeds_are_flagged_but_derived_seeds_are_not() {
        let fs = findings(
            "fn bad_entropy() { let r = StdRng::from_entropy(); }\n\
             fn bad_opaque(x: u64) { let r = SeededRng::new(x); }\n\
             fn good(cfg: &Cfg) { let r = SeededRng::new(cfg.seed); }\n\
             fn good_mix(seed: u64, round: u64) { let r = SeededRng::new(round_seed(seed, round)); }",
        );
        assert_eq!(rules_of(&fs), vec![UNSEEDED_RNG, UNSEEDED_RNG], "{fs:?}");
        assert!(fs[0].message.contains("from_entropy"), "{}", fs[0].message);
        assert!(fs[1].message.contains("no visible provenance"), "{}", fs[1].message);
    }

    #[test]
    fn clock_derived_seeds_are_entropy_with_extra_steps() {
        let fs = findings(
            "fn sneaky() { let r = SeededRng::new(SystemTime::now().elapsed().as_nanos() as u64); }",
        );
        // The ctor fires unseeded-rng; the `now()` read inside the
        // argument also fires wallclock-taint in its own right.
        assert_eq!(rules_of(&fs), vec![UNSEEDED_RNG, WALLCLOCK_TAINT], "{fs:?}");
        assert!(fs[0].message.contains("wall clock"), "{}", fs[0].message);
    }

    #[test]
    fn literal_seeds_collide_across_files_by_normalized_value() {
        let fs: Vec<Finding> = analyze_sources(&[
            ("a.rs".to_string(), "fn init() { let r = SeededRng::new(42); }".to_string()),
            ("b.rs".to_string(), "fn noise() { let r = SeededRng::new(0x2A); }".to_string()),
        ])
        .into_iter()
        .filter(|f| !f.suppressed)
        .collect();
        assert_eq!(rules_of(&fs), vec![SEED_COLLISION], "{fs:?}");
        assert_eq!(fs[0].file, "b.rs");
        assert!(fs[0].message.contains("a.rs:1"), "{}", fs[0].message);
        assert!(fs[0].message.contains("`init`"), "{}", fs[0].message);
    }

    #[test]
    fn distinct_literals_and_test_seeds_do_not_collide() {
        let fs = findings(
            "fn init() { let r = SeededRng::new(1); }\n\
             fn noise() { let r = SeededRng::new(2); }\n\
             #[cfg(test)]\nmod tests {\n fn t() { let a = SeededRng::new(1); \
             let b = SeededRng::new(1); } \n}",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn wallclock_reads_name_the_first_tainted_use() {
        let fs = findings(
            "fn decide() {\n\
             let t0 = Instant::now();\n\
             let x = work();\n\
             if t0.elapsed().as_millis() > 5 { bail(); }\n\
             }",
        );
        assert_eq!(rules_of(&fs), vec![WALLCLOCK_TAINT], "{fs:?}");
        assert!(fs[0].message.contains("`t0`"), "{}", fs[0].message);
        assert!(fs[0].message.contains("line 4"), "{}", fs[0].message);
    }

    #[test]
    fn span_stopwatch_is_the_sanctioned_clock() {
        let fs = findings(
            "impl Span { pub fn begin() -> Self { Self { start: Some(Instant::now()) } } }",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn arrival_order_fold_is_flagged_with_the_full_witness_chain() {
        let src = "impl Agg {\n\
                   pub fn run(&self) { thread::spawn(move || {}); self.fold_in(); }\n\
                   fn fold_in(&self) { let mut g = lock_unpoisoned(&self.sums); self.add(); }\n\
                   fn add(&self) { let mut s = 0.0; s += 1.0; }\n\
                   }";
        let fs = findings(src);
        assert_eq!(rules_of(&fs), vec![ORDER_SENSITIVE_FOLD], "{fs:?}");
        let msg = &fs[0].message;
        assert!(msg.contains("`Agg::fold_in`"), "{msg}");
        assert!(msg.contains("`Agg::sums`"), "{msg}");
        assert!(msg.contains("`Agg::run`"), "{msg}");
        assert!(msg.contains("via `Agg::add`"), "{msg}");
    }

    #[test]
    fn turnstile_waiters_and_unspawned_folds_are_exempt() {
        let waits = "impl Agg {\n\
                     pub fn run(&self) { thread::spawn(move || {}); self.fold_in(0); }\n\
                     fn fold_in(&self, slot: usize) { let mut g = lock_unpoisoned(&self.state); \
                     g = wait_unpoisoned(&self.turn, g); *g += 1.0; }\n\
                     }";
        assert!(findings(waits).is_empty(), "{:?}", findings(waits));
        let single_threaded = "impl Agg {\n\
                               fn fold_in(&self) { let mut g = lock_unpoisoned(&self.sums); \
                               *g += 1.0; }\n\
                               }";
        assert!(findings(single_threaded).is_empty(), "{:?}", findings(single_threaded));
    }

    #[test]
    fn disjoint_stripe_parallel_gemm_shape_is_exempt() {
        // Regression fixture for the striped multithreaded GEMM
        // (`tensor::parallel::gemm_mt`): the pool lock is taken only in
        // checkout/restore helpers that never reach a float fold, workers
        // write disjoint output stripes through an accumulating microkernel,
        // and the spawner itself holds no lock lexically. No single function
        // both acquires and reaches the `+=`, so the arrival-order rule must
        // stay quiet even though the fold is spawn-reachable.
        let src = "fn checkout(count: usize) -> Vec<Ws> { let mut held = lock_pool(&POOL); \
                   held.split_off(count) }\n\
                   fn restore(wss: Vec<Ws>) { let mut held = lock_pool(&POOL); held.truncate(32); }\n\
                   fn mk_write(acc: &[f32], c: &mut [f32]) { \
                   for (v, x) in c.iter_mut().zip(acc) { *v += x; } }\n\
                   fn gemm_span(buf: &mut [f32]) { let acc = [0.0f32; 8]; mk_write(&acc, buf); }\n\
                   pub fn gemm_mt(out: &mut [f32]) {\n\
                   let wss = checkout(4);\n\
                   std::thread::scope(|s| { s.spawn(move || { gemm_span(out); }); });\n\
                   restore(wss);\n\
                   }";
        assert!(findings(src).is_empty(), "{:?}", findings(src));

        // The exemption is about *where* the acquisition lives, not a free
        // pass for parallel GEMMs: collapse the pool checkout into the
        // spawning fold itself and the rule fires again.
        let collapsed = "fn mk_write(acc: &[f32], c: &mut [f32]) { \
                         for (v, x) in c.iter_mut().zip(acc) { *v += x; } }\n\
                         pub fn gemm_mt(out: &mut [f32]) {\n\
                         let held = lock_pool(&POOL);\n\
                         std::thread::scope(|s| { s.spawn(move || {}); });\n\
                         mk_write(&[0.0f32], out);\n\
                         }";
        assert!(
            rules_of(&findings(collapsed)).contains(&ORDER_SENSITIVE_FOLD),
            "{:?}",
            findings(collapsed)
        );
    }
}
