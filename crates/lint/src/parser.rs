//! A lightweight item/expression parser layered on [`crate::lexer`]:
//! just enough structure for the call-graph and dataflow analyses.
//!
//! Three recoveries, all panic-free on arbitrary workspace source:
//!
//! * **items** — every `fn` definition with its enclosing `impl` type
//!   ([`parse_file`]), so `Tensor::from_parts` and a free `gemm` resolve
//!   to different call-graph nodes even when names collide;
//! * **call sites** — `name(…)`, `recv.method(…)`, `Path::assoc(…)`, and
//!   turbofish forms inside a token range ([`call_sites`]); macros and
//!   definitions are excluded;
//! * **loop bodies** — the brace span of every `for`/`while`/`loop`
//!   (labeled or not) inside a token range ([`loop_bodies`]), which is
//!   what makes "per-batch" a checkable region.
//!
//! Like the lexer, the parser never panics on malformed input — an
//! unparsable construct degrades to "no item recovered", never an abort,
//! because the linter must survive every file it scans.

use crate::lexer::{Token, TokenKind};
use crate::rules::{ident, matching_brace, punct};
use crate::scope::{function_items, FnItem};

/// One `fn` definition with its `impl` context.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Structural facts from the scope layer: name, visibility, params,
    /// body span.
    pub item: FnItem,
    /// The `Self` type of the enclosing `impl` block, when there is one
    /// (`impl Layer for Conv2d` and `impl Conv2d` both yield `Conv2d`).
    pub impl_type: Option<String>,
}

impl FnDef {
    /// `Type::name` for methods, bare `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.item.name),
            None => self.item.name.clone(),
        }
    }
}

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (`gemm`, `take_scratch`, `from_mask`, …).
    pub callee: String,
    /// The path segment directly before `::`, when the call is
    /// path-qualified (`RowPattern::from_mask` → `RowPattern`,
    /// `Self::helper` → `Self`).
    pub qualifier: Option<String>,
    /// Whether the call uses method syntax (`recv.name(…)`).
    pub is_method: bool,
    /// 1-based source line of the callee token.
    pub line: usize,
    /// Token index of the callee token.
    pub idx: usize,
}

/// Parses one lexed file into its function definitions.
pub fn parse_file(toks: &[Token]) -> Vec<FnDef> {
    let impls = impl_ranges(toks);
    function_items(toks)
        .into_iter()
        .map(|item| {
            // The innermost impl block containing the name token wins
            // (nested impls inside fn bodies are legal Rust).
            let impl_type = impls
                .iter()
                .filter(|(_, lo, hi)| item.name_idx > *lo && item.name_idx < *hi)
                .min_by_key(|(_, lo, hi)| hi - lo)
                .map(|(name, _, _)| name.clone());
            FnDef { item, impl_type }
        })
        .collect()
}

/// Every `impl` block as `(self_type, open_brace_idx, close_brace_idx)`.
///
/// The self type is the last path segment of the type after `for` (trait
/// impls) or directly after the generics (inherent impls); `where`
/// clauses and reference/pointer sigils are skipped.
pub fn impl_ranges(toks: &[Token]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if ident(&toks[i]) != Some("impl") {
            i += 1;
            continue;
        }
        // Walk the header up to the body `{` at angle-depth 0, remembering
        // the last identifier of the self-type path. `for` resets the
        // candidate (trait name → self type); `where` ends the type.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut candidate: Option<String> = None;
        let mut in_where = false;
        while j < toks.len() {
            match &toks[j].kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle -= 1,
                TokenKind::Punct('{') if angle <= 0 => break,
                TokenKind::Punct(';') if angle <= 0 => break, // `impl Trait for T;`-like degenerate
                TokenKind::Ident(s) if angle <= 0 => match s.as_str() {
                    "for" => candidate = None,
                    "where" => in_where = true,
                    "dyn" | "mut" | "const" | "unsafe" => {}
                    name if !in_where => candidate = Some(name.to_string()),
                    _ => {}
                },
                _ => {}
            }
            j += 1;
        }
        if j < toks.len() && punct(&toks[j]) == Some('{') {
            let close = matching_brace(toks, j);
            if let Some(name) = candidate {
                out.push((name, j, close));
            }
            // Impl bodies may hold nested impls only inside fn bodies;
            // continuing from just past the header keeps those visible.
            i = j + 1;
        } else {
            i = j;
        }
    }
    out
}

/// Rust keywords that look like `ident (` but never name a call.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "loop", "return", "in", "let", "fn", "move", "break", "continue",
];

/// Extracts call sites from `toks[lo..=hi]`.
///
/// Recognised shapes: `name(…)`, `name::<T>(…)`, `recv.name(…)`,
/// `Path::name(…)`. Excluded: macro invocations (`name!(…)`), function
/// definitions (`fn name(…)`), and keyword headers (`if (…)`).
pub fn call_sites(toks: &[Token], lo: usize, hi: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let hi = hi.min(toks.len().saturating_sub(1));
    let mut i = lo;
    while i <= hi {
        let Some(name) = ident(&toks[i]) else {
            i += 1;
            continue;
        };
        if NON_CALL_KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }
        // A definition, not a call.
        if i > 0 && ident(&toks[i - 1]) == Some("fn") {
            i += 1;
            continue;
        }
        // Where does the argument list have to start? Directly after the
        // name, or after a turbofish `::<…>`.
        let mut open = i + 1;
        if punct_at(toks, open) == Some(':')
            && punct_at(toks, open + 1) == Some(':')
            && punct_at(toks, open + 2) == Some('<')
        {
            let mut depth = 0i32;
            let mut k = open + 2;
            while k <= hi {
                match punct_at(toks, k) {
                    Some('<') => depth += 1,
                    Some('>') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            open = k + 1;
        }
        if punct_at(toks, open) != Some('(') {
            i += 1;
            continue;
        }
        // `name !(…)` is a macro; the lexer guarantees `!` shows up as
        // punctuation between the ident and the paren.
        if punct_at(toks, i + 1) == Some('!') {
            i += 1;
            continue;
        }
        let is_method = i > 0 && punct_at(toks, i - 1) == Some('.');
        let qualifier =
            if i >= 3 && punct_at(toks, i - 1) == Some(':') && punct_at(toks, i - 2) == Some(':') {
                ident(&toks[i - 3]).map(str::to_string)
            } else {
                None
            };
        out.push(CallSite {
            callee: name.to_string(),
            qualifier,
            is_method,
            line: toks[i].line,
            idx: i,
        });
        i += 1;
    }
    out
}

/// Brace spans of every loop body (`for`/`while`/`loop`, labeled forms
/// included) inside `toks[lo..=hi]`, innermost loops listed too.
///
/// The body `{` is the first brace at bracket/paren depth 0 after the
/// keyword — sound because Rust forbids bare struct literals in loop
/// header expressions, and closure bodies in the header sit inside
/// parentheses.
pub fn loop_bodies(toks: &[Token], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let hi = hi.min(toks.len().saturating_sub(1));
    for i in lo..=hi {
        let Some(kw) = ident(&toks[i]) else { continue };
        if !matches!(kw, "for" | "while" | "loop") {
            continue;
        }
        // A higher-ranked `for<'a>` bound is not a loop.
        if kw == "for" && punct_at(toks, i + 1) == Some('<') {
            continue;
        }
        // `break 'label loop`-adjacent false positives are impossible:
        // `loop` after `break` never carries a body before the `;`.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut open = None;
        let mut saw_in = false;
        while j <= hi {
            match punct_at(toks, j) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('{') if depth == 0 => {
                    open = Some(j);
                    break;
                }
                Some(';') if depth == 0 => break,
                _ => {
                    if depth == 0 && ident(&toks[j]) == Some("in") {
                        saw_in = true;
                    }
                }
            }
            j += 1;
        }
        // A loop's `for` always binds a pattern with a top-level `in`;
        // `impl Trait for Type { … }` never does — that distinction is
        // what keeps impl headers out of the loop list.
        if kw == "for" && !saw_in {
            continue;
        }
        if let Some(open) = open {
            out.push((open, matching_brace(toks, open)));
        }
    }
    out
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    toks.get(i).and_then(punct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn impl_ranges_recover_inherent_trait_and_generic_impls() {
        let src = "impl Foo { fn a(&self) {} }\n\
                   impl<T: Ord> Bar<T> where T: Clone { fn b() {} }\n\
                   impl fmt::Display for Violation { fn fmt(&self) {} }\n\
                   impl Layer for Conv2d { fn c(&self) {} }";
        let lexed = lex(src);
        let ranges = impl_ranges(&lexed.tokens);
        let names: Vec<&str> = ranges.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Foo", "Bar", "Violation", "Conv2d"]);
    }

    #[test]
    fn parse_file_attributes_methods_to_their_impl_type() {
        let src = "fn free() {}\nimpl Conv2d { pub fn forward_ws(&mut self) { helper(); } }\nfn helper() {}";
        let defs = parse_file(&lex(src).tokens);
        assert_eq!(defs.len(), 3);
        assert_eq!(defs[0].qualified(), "free");
        assert_eq!(defs[1].qualified(), "Conv2d::forward_ws");
        assert_eq!(defs[2].qualified(), "helper");
    }

    #[test]
    fn call_sites_classify_bare_method_path_and_turbofish() {
        let src = "fn f() { gemm(1); x.clone(); Tensor::from_parts(v); \
                   it.collect::<Vec<_>>(); vec![0.0; 4]; if cond { } Self::helper(); }";
        let lexed = lex(src);
        let calls = call_sites(&lexed.tokens, 0, lexed.tokens.len() - 1);
        let names: Vec<(&str, Option<&str>, bool)> = calls
            .iter()
            .map(|c| (c.callee.as_str(), c.qualifier.as_deref(), c.is_method))
            .collect();
        assert!(names.contains(&("gemm", None, false)));
        assert!(names.contains(&("clone", None, true)));
        assert!(names.contains(&("from_parts", Some("Tensor"), false)));
        assert!(names.contains(&("collect", None, true)));
        assert!(names.contains(&("helper", Some("Self"), false)));
        // `vec!` is a macro, `if` a keyword, `f` a definition.
        assert!(!names.iter().any(|(n, _, _)| *n == "vec" || *n == "if" || *n == "f"));
    }

    #[test]
    fn loop_bodies_cover_for_while_loop_and_labels() {
        let src = "fn f() {\n\
                   for i in 0..n { a(); }\n\
                   while let Some(x) = it.next() { b(); }\n\
                   'outer: loop { c(); break 'outer; }\n\
                   let g = |x: u8| x; // not a loop\n\
                   }";
        let lexed = lex(src);
        let loops = loop_bodies(&lexed.tokens, 0, lexed.tokens.len() - 1);
        assert_eq!(loops.len(), 3, "{loops:?}");
        let in_loop = |name: &str| {
            let idx = lexed
                .tokens
                .iter()
                .position(|t| ident(t) == Some(name))
                .unwrap_or_else(|| panic!("no token {name}"));
            loops.iter().any(|&(lo, hi)| idx > lo && idx < hi)
        };
        assert!(in_loop("a") && in_loop("b") && in_loop("c"));
        assert!(!in_loop("g"));
    }

    #[test]
    fn hrtb_for_bound_and_impl_for_are_not_loops() {
        let src = "impl Layer for Conv2d { fn f(&self) { take(|| 0); } }\n\
                   fn g<F>(f: F) where F: for<'a> Fn(&'a u8) {}";
        let lexed = lex(src);
        assert!(loop_bodies(&lexed.tokens, 0, lexed.tokens.len() - 1).is_empty());
    }

    #[test]
    fn closure_braces_inside_loop_headers_do_not_confuse_the_body() {
        let src = "fn f() { for x in v.iter().map(|y| { y + 1 }) { body(); } }";
        let lexed = lex(src);
        let loops = loop_bodies(&lexed.tokens, 0, lexed.tokens.len() - 1);
        assert_eq!(loops.len(), 1);
        let body_idx = lexed.tokens.iter().position(|t| ident(t) == Some("body")).unwrap();
        assert!(loops[0].0 < body_idx && body_idx < loops[0].1);
    }
}
