//! Driver for `subfed-lint analyze`: parse every library source, build
//! the cross-crate call graph, run the dataflow and concurrency rules,
//! then apply and audit suppressions.
//!
//! The analyze command owns the fourteen analyze-side rules
//! ([`crate::dataflow::ANALYZE_RULES`]: the three hot-path dataflow
//! rules, the four [`crate::locks`] concurrency rules, the four
//! [`crate::taint`] determinism rules, and the three
//! [`crate::totality`] rules) and audits
//! only *their* allow directives for staleness — `check` audits the
//! token/scope rules' directives and skips these, so each directive is
//! judged exactly once, by the command that computes the findings it
//! could suppress. The same pass audits `// lint: hot`/`cold`/`total`
//! markers: a marker that attaches to no function (the `fn` on its own
//! line or the line below), or a `hot`/`total` marker on a function
//! that is already a built-in hot or total entry, is reported as
//! [`STALE_ALLOW`], because a drifted marker silently widens or narrows
//! the analyzed entry sets.

use crate::callgraph::{CallGraph, SourceFile, HOT_ENTRIES};
use crate::dataflow::{dataflow_findings, ANALYZE_RULES};
use crate::lexer::MarkerKind;
use crate::rules::{Finding, STALE_ALLOW};
use crate::summaries::Summaries;
use crate::totality::TOTAL_ENTRIES;
use crate::walk::{crate_sources, Report, ANALYZE_CRATES};
use std::path::Path;

/// Runs the dataflow and concurrency analyses over `(label, source)`
/// pairs — the whole workspace at once, since hot-path reachability and
/// the lock-order graph are cross-crate.
pub fn analyze_sources(inputs: &[(String, String)]) -> Vec<Finding> {
    let files: Vec<SourceFile> =
        inputs.iter().map(|(label, text)| SourceFile::parse(label, text)).collect();
    let graph = CallGraph::build(&files);
    let mut findings = dataflow_findings(&files, &graph);
    let summaries = Summaries::build(&files, &graph);
    findings.extend(crate::locks::lock_findings(&files, &graph, &summaries));
    findings.extend(crate::taint::taint_findings(&files, &graph, &summaries));
    findings.extend(crate::totality::totality_findings(&files, &graph));

    for f in &mut findings {
        let Some(file) = files.iter().find(|s| s.label == f.file) else { continue };
        f.suppressed = file.lexed.allows.iter().any(|a| {
            (a.line == f.line || a.line + 1 == f.line) && a.rules.iter().any(|r| r == f.rule)
        });
    }

    for file in &files {
        audit_directives(file, &mut findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Stale-suppression audit for the analyze-owned rules plus the marker
/// attachment audit, one file at a time.
fn audit_directives(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    let test_lines: Vec<(usize, usize)> =
        file.test_ranges.iter().map(|&(lo, hi)| (toks[lo].line, toks[hi].line)).collect();
    let in_test_lines = |line: usize| test_lines.iter().any(|&(lo, hi)| line >= lo && line <= hi);

    let mut stale = Vec::new();
    for a in &file.lexed.allows {
        if in_test_lines(a.line) {
            continue;
        }
        for rule in &a.rules {
            if !ANALYZE_RULES.contains(&rule.as_str()) {
                continue; // `check` audits the token/scope rules.
            }
            let earns_keep = findings.iter().any(|f| {
                f.file == file.label
                    && f.rule == rule.as_str()
                    && (a.line == f.line || a.line + 1 == f.line)
            });
            if !earns_keep {
                stale.push(Finding {
                    file: file.label.clone(),
                    line: a.line,
                    rule: STALE_ALLOW,
                    message: format!(
                        "allow({rule}) suppresses nothing here; remove the stale directive"
                    ),
                    suppressed: false,
                });
            }
        }
    }
    for m in &file.lexed.markers {
        if in_test_lines(m.line) {
            continue;
        }
        let attached =
            file.defs.iter().find(|d| m.line == d.item.line || m.line + 1 == d.item.line);
        match attached {
            None => stale.push(Finding {
                file: file.label.clone(),
                line: m.line,
                rule: STALE_ALLOW,
                message: "lint: hot/cold/total marker attaches to no function (it must sit \
                          on the fn's line or the line above); move or remove it"
                    .to_string(),
                suppressed: false,
            }),
            // A `hot`/`total` marker on a built-in entry widens nothing:
            // it is dead weight that would silently stop protecting the
            // function if the entry list ever changed.
            Some(d) if m.kind == MarkerKind::Hot && HOT_ENTRIES.contains(&d.item.name.as_str()) => {
                stale.push(Finding {
                    file: file.label.clone(),
                    line: m.line,
                    rule: STALE_ALLOW,
                    message: format!(
                        "lint: hot marker is redundant: `{}` is a built-in hot entry \
                         point; remove the marker",
                        d.item.name
                    ),
                    suppressed: false,
                });
            }
            Some(d)
                if m.kind == MarkerKind::Total
                    && TOTAL_ENTRIES.contains(&d.qualified().as_str()) =>
            {
                stale.push(Finding {
                    file: file.label.clone(),
                    line: m.line,
                    rule: STALE_ALLOW,
                    message: format!(
                        "lint: total marker is redundant: `{}` is a built-in total entry \
                         point; remove the marker",
                        d.qualified()
                    ),
                    suppressed: false,
                });
            }
            Some(_) => {}
        }
    }
    findings.extend(stale);
}

/// Runs the dataflow and concurrency analyses over the
/// [`ANALYZE_CRATES`] library sources under `root` — the `analyze`
/// counterpart of [`check_workspace`](crate::walk::check_workspace).
///
/// # Errors
///
/// Returns a message when a source tree cannot be read.
#[must_use = "the report carries the findings and the exit status"]
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let sources = crate_sources(root, &ANALYZE_CRATES)?;
    let findings = analyze_sources(&sources);
    Ok(Report { findings, files_scanned: sources.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::{HOT_PATH_ALLOC, SCRATCH_BEFORE_READ};
    use crate::walk::find_workspace_root;

    fn one(src: &str) -> Vec<Finding> {
        analyze_sources(&[("fixture.rs".to_string(), src.to_string())])
    }

    fn live(src: &str) -> Vec<Finding> {
        one(src).into_iter().filter(|f| !f.suppressed).collect()
    }

    #[test]
    fn allow_suppresses_a_dataflow_finding() {
        let src = "pub fn forward_ws() {\n\
                   let v = Vec::new(); // lint: allow(hot-path-alloc)\n\
                   }";
        let all = one(src);
        assert_eq!(all.len(), 1);
        assert!(all[0].suppressed, "{all:?}");
        assert!(live(src).is_empty());
    }

    #[test]
    fn stale_analyze_allow_is_flagged_but_check_rules_are_ignored() {
        let src = "pub fn cold_fn() {\n\
                   let v = Vec::new(); // lint: allow(hot-path-alloc)\n\
                   x.unwrap(); // lint: allow(no-unwrap)\n\
                   }";
        // `cold_fn` is not hot, so the hot-path-alloc allow is stale; the
        // no-unwrap allow belongs to `check` and must not be judged here.
        let fs = live(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, STALE_ALLOW);
        assert_eq!(fs[0].line, 2);
        assert!(fs[0].message.contains("hot-path-alloc"));
    }

    #[test]
    fn orphan_marker_is_flagged_and_attached_marker_is_not() {
        let attached = "// lint: cold\nfn setup() {}";
        assert!(live(attached).is_empty(), "{:?}", live(attached));
        let orphan = "// lint: cold\n\nfn setup() {}";
        let fs = live(orphan);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, STALE_ALLOW);
        assert!(fs[0].message.contains("marker"));
    }

    #[test]
    fn cross_file_reachability_is_analyzed_in_one_graph() {
        let core = "pub fn train_client_ws() { helper_step(); }".to_string();
        let tensor = "pub fn helper_step() { let v = data.to_vec(); }".to_string();
        let fs =
            analyze_sources(&[("core.rs".to_string(), core), ("tensor.rs".to_string(), tensor)]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, HOT_PATH_ALLOC);
        assert_eq!(fs[0].file, "tensor.rs");
        assert!(fs[0].message.contains("train_client_ws"));
    }

    #[test]
    fn scratch_rule_fires_regardless_of_heat() {
        let src = "fn anywhere(ws: &mut W) { let b = ws.take_scratch(n); read(&b); }";
        let fs = live(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, SCRATCH_BEFORE_READ);
    }

    #[test]
    fn workspace_analyze_is_clean() {
        // The acceptance gate of the analyze command itself: zero
        // unsuppressed dataflow findings in the four library crates.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let report = analyze_workspace(&root).expect("scan");
        assert!(report.files_scanned >= 30, "only {} files", report.files_scanned);
        let live = report.unsuppressed();
        assert!(
            live.is_empty(),
            "unsuppressed analyze findings:\n{}",
            live.iter().map(|f| f.render()).collect::<Vec<_>>().join("\n")
        );
    }
}
