//! Brace/scope-aware analysis: a lightweight structural layer over the
//! flat token stream that recovers **function items** — name, visibility,
//! parameter list, body extent — without building an AST.
//!
//! Two rules need this structure (flat token windows cannot see "inside
//! this function, after that call"):
//!
//! - [`MASK_MUTATION_AFTER_UPLOAD`]: inside one engine/algorithm
//!   function, a client mask is mutated at a point textually after an
//!   `Upload` trace emission. The uploaded byte count was derived from
//!   the mask at upload time, so any later mutation before round end
//!   de-synchronises the trace (and the server's view) from the client's
//!   actual mask.
//! - [`TRACER_THREADING`]: a `pub` engine/algorithm function takes `&mut`
//!   model/mask state but threads no [`Tracer`] (no tracer parameter, no
//!   `self` receiver to reach one, no tracer use in the body) — a new
//!   code path through it can mutate round state that observability
//!   never sees.
//!
//! Both rules apply only to the protocol-bearing files
//! (`crates/core/src/engine.rs` and `crates/core/src/algorithms/`);
//! helper crates mutate masks legitimately all the time.
//!
//! [`Tracer`]: subfed_metrics::trace::Tracer

use crate::lexer::{Token, TokenKind};
use crate::rules::{ident, matching_brace, punct, Finding};

/// Identifier of the mask-mutated-after-upload rule.
pub const MASK_MUTATION_AFTER_UPLOAD: &str = "mask-mutation-after-upload";
/// Identifier of the untraced-state-mutation rule.
pub const TRACER_THREADING: &str = "tracer-threading";

/// Mutable round-state types whose `&mut` receipt obliges a function to
/// carry observability (see [`TRACER_THREADING`]).
const STATEFUL_TYPES: [&str; 2] = ["Sequential", "ModelMask"];

/// Methods that mutate their receiver even though the token stream shows
/// no `=`: every `*_mut` accessor plus the common in-place operations.
const MUTATING_METHODS: [&str; 10] = [
    "push",
    "insert",
    "remove",
    "clear",
    "set",
    "apply",
    "fill",
    "truncate",
    "retain",
    "copy_from_slice",
];

/// Whether the scope rules run on this file at all.
pub fn applies_to(file_label: &str) -> bool {
    let l = file_label.replace('\\', "/");
    l.contains("core/src/engine.rs") || l.contains("core/src/algorithms/")
}

/// One parameter of a function item.
#[derive(Debug, Clone)]
pub struct Param {
    /// Whether the parameter is taken by `&mut`.
    pub by_mut_ref: bool,
    /// Every identifier appearing in the parameter's type.
    pub type_idents: Vec<String>,
}

/// One `fn` item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// Token index of the name.
    pub name_idx: usize,
    /// Whether the item is `pub` (any visibility flavour).
    pub is_pub: bool,
    /// Whether the parameter list contains a `self` receiver.
    pub has_self: bool,
    /// The parsed parameters (receiver excluded).
    pub params: Vec<Param>,
    /// Token indices of the body's `{` and `}` (absent for trait
    /// method declarations).
    pub body: Option<(usize, usize)>,
}

/// Recovers every `fn` item (any nesting depth) from a lexed file.
pub fn function_items(toks: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if ident(&toks[i]) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { break };
        let Some(name) = ident(name_tok) else {
            i += 1;
            continue;
        };
        let is_pub = has_pub_before(toks, i);
        let mut j = i + 2;
        // Skip generics `<…>` (angle-depth counting; `->` cannot appear
        // before the parameter list).
        if punct(&toks[j.min(toks.len() - 1)]) == Some('<') {
            let mut depth = 0i32;
            while j < toks.len() {
                match punct(&toks[j]) {
                    Some('<') => depth += 1,
                    Some('>') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if toks.get(j).and_then(punct) != Some('(') {
            i += 1;
            continue;
        }
        let close_paren = matching_paren(toks, j);
        let (has_self, params) = parse_params(&toks[j + 1..close_paren]);
        // Find the body `{` (or `;` for a bodiless declaration). The
        // return type may contain `<…>` but never a brace; an array type
        // like `-> [u8; 2]` carries a `;` that must not read as bodiless,
        // so `;` only terminates at bracket depth 0.
        let mut k = close_paren + 1;
        let mut body = None;
        let mut bracket = 0i32;
        while k < toks.len() {
            match punct(&toks[k]) {
                Some('[') => bracket += 1,
                Some(']') => bracket -= 1,
                Some('{') => {
                    body = Some((k, matching_brace(toks, k)));
                    break;
                }
                Some(';') if bracket == 0 => break,
                _ => {}
            }
            k += 1;
        }
        out.push(FnItem {
            name: name.to_string(),
            line: name_tok.line,
            name_idx: i + 1,
            is_pub,
            has_self,
            params,
            body,
        });
        i += 2;
    }
    out
}

/// Whether the tokens before the `fn` at `i` spell a `pub` visibility
/// (possibly `pub(crate)`/`pub(super)`, possibly behind qualifiers).
fn has_pub_before(toks: &[Token], mut i: usize) -> bool {
    while i > 0 {
        let prev = &toks[i - 1];
        match ident(prev) {
            Some("const") | Some("unsafe") | Some("async") | Some("extern") => i -= 1,
            Some("pub") => return true,
            _ => {
                if prev.kind == TokenKind::Str {
                    // extern "C"
                    i -= 1;
                } else if punct(prev) == Some(')') {
                    // Possibly the tail of `pub(crate)`.
                    let mut j = i - 1;
                    while j > 0 && punct(&toks[j]) != Some('(') {
                        j -= 1;
                    }
                    return j > 0 && ident(&toks[j - 1]) == Some("pub");
                } else {
                    return false;
                }
            }
        }
    }
    false
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match punct(t) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[Token], open: usize) -> usize {
    let mut depth = 0;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match punct(t) {
            Some('[') => depth += 1,
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Splits a parameter-list token slice at top-level commas and parses
/// each parameter. Returns `(has_self, params)`.
fn parse_params(toks: &[Token]) -> (bool, Vec<Param>) {
    let mut chunks: Vec<&[Token]> = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (j, t) in toks.iter().enumerate() {
        match punct(t) {
            Some('(') | Some('[') | Some('<') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            // Not the `>` of a `->` in an `Fn(..) -> T` bound.
            Some('>') if j == 0 || punct(&toks[j - 1]) != Some('-') => depth -= 1,
            Some(',') if depth == 0 => {
                chunks.push(&toks[start..j]);
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        chunks.push(&toks[start..]);
    }

    let mut has_self = false;
    let mut params = Vec::new();
    for chunk in chunks {
        if chunk.iter().any(|t| ident(t) == Some("self")) {
            has_self = true;
            continue;
        }
        // The type starts after the top-level `:` (there is exactly one in
        // a non-receiver parameter; pattern parameters keep it top-level).
        let mut depth = 0i32;
        let mut colon = None;
        for (j, t) in chunk.iter().enumerate() {
            match punct(t) {
                Some('(') | Some('[') | Some('<') => depth += 1,
                Some(')') | Some(']') | Some('>') => depth -= 1,
                Some(':') if depth == 0 => {
                    colon = Some(j);
                    break;
                }
                _ => {}
            }
        }
        let ty = match colon {
            Some(c) => &chunk[c + 1..],
            None => continue,
        };
        let by_mut_ref =
            ty.windows(2).any(|w| punct(&w[0]) == Some('&') && ident(&w[1]) == Some("mut"))
                || ty.windows(3).any(|w| {
                    punct(&w[0]) == Some('&')
                        && w[1].kind == TokenKind::Lifetime
                        && ident(&w[2]) == Some("mut")
                });
        let type_idents = ty.iter().filter_map(|t| ident(t).map(str::to_string)).collect();
        params.push(Param { by_mut_ref, type_idents });
    }
    (has_self, params)
}

/// Runs both scope rules over one file's tokens. `test_ranges` are the
/// token-index spans of `#[cfg(test)] mod` blocks (their functions are
/// exempt, like everywhere else in the linter).
pub fn scope_rules(file: &str, toks: &[Token], test_ranges: &[(usize, usize)]) -> Vec<Finding> {
    let mut out = Vec::new();
    let in_tests = |idx: usize| test_ranges.iter().any(|&(lo, hi)| idx >= lo && idx <= hi);
    for item in function_items(toks) {
        if in_tests(item.name_idx) {
            continue;
        }
        check_tracer_threading(file, toks, &item, &mut out);
        check_mask_mutation_after_upload(file, toks, &item, &mut out);
    }
    out
}

fn check_tracer_threading(file: &str, toks: &[Token], item: &FnItem, out: &mut Vec<Finding>) {
    if !item.is_pub || item.has_self {
        return;
    }
    let mutates_state = item.params.iter().any(|p| {
        p.by_mut_ref && p.type_idents.iter().any(|t| STATEFUL_TYPES.contains(&t.as_str()))
    });
    if !mutates_state {
        return;
    }
    let has_tracer_param = item.params.iter().any(|p| p.type_idents.iter().any(|t| t == "Tracer"));
    if has_tracer_param {
        return;
    }
    // A body that touches a tracer (e.g. `fed.tracer().emit(…)`) has
    // observability even without a dedicated parameter.
    if let Some((open, close)) = item.body {
        if toks[open..=close].iter().any(|t| ident(t) == Some("tracer")) {
            return;
        }
    }
    out.push(Finding {
        file: file.to_string(),
        line: item.line,
        rule: TRACER_THREADING,
        message: format!(
            "pub fn `{}` takes &mut model/mask state but no Tracer; thread the \
             round tracer through (or justify) so this path stays observable",
            item.name
        ),
        suppressed: false,
    });
}

/// Mask-named identifiers: the flat per-client masks the round protocol
/// freezes at upload time.
fn is_mask_name(name: &str) -> bool {
    name == "mask" || name == "masks" || name.ends_with("_mask") || name.ends_with("_masks")
}

fn check_mask_mutation_after_upload(
    file: &str,
    toks: &[Token],
    item: &FnItem,
    out: &mut Vec<Finding>,
) {
    let Some((open, close)) = item.body else { return };
    // The first `Upload` emission in the body; everything textually after
    // it runs after the bytes-on-the-wire number was fixed.
    let Some(upload) = (open..=close).find(|&j| ident(&toks[j]) == Some("Upload")) else {
        return;
    };
    let mut j = upload + 1;
    while j < close {
        if let Some(name) = ident(&toks[j]) {
            if is_mask_name(name) {
                if let Some(how) = mutation_after(toks, j, close) {
                    out.push(Finding {
                        file: file.to_string(),
                        line: toks[j].line,
                        rule: MASK_MUTATION_AFTER_UPLOAD,
                        message: format!(
                            "`{name}` is {how} after the round's Upload emission in \
                             `{}`; the uploaded byte count no longer describes the mask",
                            item.name
                        ),
                        suppressed: false,
                    });
                }
            }
        }
        j += 1;
    }
}

/// If the mask-named identifier at `i` is mutated, says how; `None` when
/// the use is read-only. Checks three shapes: `&mut name`, assignment
/// (`name[…] = …`, compound operators included), and a mutating method
/// call (`name.push(…)`, `name.tensors_mut(…)`).
fn mutation_after(toks: &[Token], i: usize, close: usize) -> Option<&'static str> {
    if i >= 2 && ident(&toks[i - 1]) == Some("mut") && punct(&toks[i - 2]) == Some('&') {
        return Some("passed by &mut");
    }
    // Skip any `[…]` index groups after the name.
    let mut j = i + 1;
    while j < close && punct(&toks[j]) == Some('[') {
        j = matching_bracket(toks, j) + 1;
    }
    match toks.get(j).and_then(punct) {
        Some('=') if toks.get(j + 1).and_then(punct) != Some('=') => {
            return Some("assigned");
        }
        Some(op @ ('+' | '-' | '*' | '/' | '&' | '|' | '^'))
            if toks.get(j + 1).and_then(punct) == Some('=') =>
        {
            // `&& =`-style false matches are impossible: `&&` lexes as two
            // '&' puncts and the second would be the op here, still `&=`.
            let _ = op;
            return Some("compound-assigned");
        }
        Some('.') => {
            if let Some(m) = toks.get(j + 1).and_then(ident) {
                if (m.ends_with("_mut") || MUTATING_METHODS.contains(&m))
                    && toks.get(j + 2).and_then(punct) == Some('(')
                {
                    return Some("mutated via a method call");
                }
            }
        }
        _ => {}
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const LABEL: &str = "crates/core/src/algorithms/fixture.rs";

    fn findings(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        scope_rules(LABEL, &lexed.tokens, &[])
    }

    #[test]
    fn function_items_recover_name_vis_params_body() {
        let src = "pub fn f<T: Ord>(a: &mut Sequential, b: usize) -> u8 { 0 }\nfn g();";
        let items = function_items(&lex(src).tokens);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "f");
        assert!(items[0].is_pub);
        assert!(!items[0].has_self);
        assert_eq!(items[0].params.len(), 2);
        assert!(items[0].params[0].by_mut_ref);
        assert!(items[0].params[0].type_idents.contains(&"Sequential".to_string()));
        assert!(items[0].body.is_some());
        assert!(!items[1].is_pub);
        assert!(items[1].body.is_none());
    }

    #[test]
    fn pub_crate_and_self_receivers_are_recognised() {
        let src = "impl X { pub(crate) fn m(&self, p: &mut ModelMask) {} }";
        let items = function_items(&lex(src).tokens);
        assert_eq!(items.len(), 1);
        assert!(items[0].is_pub);
        assert!(items[0].has_self);
        assert_eq!(items[0].params.len(), 1);
    }

    #[test]
    fn tracer_threading_flags_untraced_mut_state() {
        let src = "pub fn eval(model: &mut Sequential, n: usize) -> f32 { 0.0 }";
        let fs = findings(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, TRACER_THREADING);
        assert!(fs[0].message.contains("`eval`"));
    }

    #[test]
    fn tracer_param_or_receiver_or_body_use_satisfies_the_rule() {
        let with_param = "pub fn a(m: &mut Sequential, tr: &Tracer) {}";
        let with_self = "impl F { pub fn b(&self, m: &mut Sequential) {} }";
        let with_use = "pub fn c(fed: &Federation, m: &mut Sequential) { fed.tracer().flush(); }";
        let private = "fn d(m: &mut Sequential) {}";
        let read_only = "pub fn e(m: &Sequential) {}";
        for src in [with_param, with_self, with_use, private, read_only] {
            assert!(findings(src).is_empty(), "false positive on {src}");
        }
    }

    #[test]
    fn mask_mutation_after_upload_is_flagged() {
        let src = "fn step(masks: &mut Vec<M>) {\n\
                   t.emit(TraceEvent::Upload { round, client, bytes });\n\
                   masks[i] = new_mask;\n\
                   }";
        let fs = findings(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, MASK_MUTATION_AFTER_UPLOAD);
        assert_eq!(fs[0].line, 3);
    }

    #[test]
    fn mask_mutation_before_upload_is_fine() {
        let src = "fn step(masks: &mut Vec<M>) {\n\
                   masks[i] = new_mask;\n\
                   t.emit(TraceEvent::Upload { round, client, bytes });\n\
                   let n = masks[i].kept();\n\
                   let d = flat_mask.iter().sum();\n\
                   }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn mutating_method_and_mut_borrow_after_upload_are_flagged() {
        let src = "fn step() {\n\
                   t.emit(TraceEvent::Upload { round, client, bytes });\n\
                   flat_mask.push(1.0);\n\
                   rebuild(&mut masks);\n\
                   }";
        let fs = findings(src);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == MASK_MUTATION_AFTER_UPLOAD));
    }

    #[test]
    fn compound_assignment_is_flagged_but_comparison_is_not() {
        let hit = "fn a() { emit(Upload); mask &= other; }";
        let miss = "fn b() { emit(Upload); if mask == other { } }";
        assert_eq!(findings(hit).len(), 1);
        assert!(findings(miss).is_empty(), "== is not a mutation");
    }

    #[test]
    fn functions_in_test_ranges_are_exempt() {
        let src = "fn lib() { emit(Upload); mask = m; }";
        let lexed = lex(src);
        let all = scope_rules(LABEL, &lexed.tokens, &[]);
        assert_eq!(all.len(), 1);
        let none = scope_rules(LABEL, &lexed.tokens, &[(0, lexed.tokens.len() - 1)]);
        assert!(none.is_empty());
    }

    #[test]
    fn applies_only_to_engine_and_algorithms() {
        assert!(applies_to("crates/core/src/engine.rs"));
        assert!(applies_to("crates/core/src/algorithms/subfedavg_un.rs"));
        assert!(!applies_to("crates/nn/src/mask.rs"));
        assert!(!applies_to("crates/core/src/aggregate.rs"));
    }
}
