//! Bottom-up function summaries over the call graph, so the held-region
//! rules in [`crate::locks`] compose through calls.
//!
//! For every call-graph node the builder computes four monotone facts:
//!
//! * **allocates** — the body (or something it calls) contains one of the
//!   allocation shapes of [`alloc_sites`] (the same machinery behind the
//!   `hot-path-alloc` rule);
//! * **spawns** — the body reaches `spawn`/`crossbeam::thread::scope`;
//! * **blocks** — the body reaches a synchronous wait (`join()`/`recv()`)
//!   or an I/O call (`write_all`, `flush`, …), tracked separately because
//!   only the former is a deadlock shape worth flagging under a guard;
//! * **acquires** — the set of lock identities (see
//!   [`crate::locks::fn_acquisitions`]) the body may take.
//!
//! Each fact carries a witness [`Fact`]: the concrete site (file, line,
//! shape) plus the call chain from the summarised function down to it, so
//! a transitive finding can name *why* the summary holds. Facts are
//! set-once (a summary never loses a fact, and an existing witness is
//! never replaced), which makes the propagation a monotone fixpoint that
//! terminates in at most `depth-of-call-graph` passes.
//!
//! Test-module functions contribute nothing: their bodies may allocate,
//! spawn, and block freely, and poisoning a summary through a test-only
//! edge would leak test idioms into library findings.

use crate::callgraph::{CallGraph, SourceFile};
use crate::lexer::{Token, TokenKind};
use crate::parser::{call_sites, CallSite};
use crate::rules::{ident, punct};
use std::collections::BTreeMap;

/// One allocation site inside a token range.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// Token index of the triggering identifier.
    pub idx: usize,
    /// 1-based source line.
    pub line: usize,
    /// Rendered shape (`` `Vec::new()` ``, `` `.clone()` ``, …).
    pub what: &'static str,
}

/// The allocation shapes the workspace rules recognise, extracted from
/// `toks[open..=close]`. `Vec::with_capacity` is deliberately absent: it
/// is the idiom for a justified one-time allocation, and both the
/// `hot-path-alloc` and `alloc-under-lock` rules exempt it.
pub fn alloc_sites(toks: &[Token], open: usize, close: usize) -> Vec<AllocSite> {
    let mut out = Vec::new();
    let close = close.min(toks.len().saturating_sub(1));
    for i in open..=close {
        let Some(name) = ident(&toks[i]) else { continue };
        let prev = i.checked_sub(1).and_then(|p| toks.get(p)).and_then(punct);
        let next = toks.get(i + 1).and_then(punct);
        let what = match name {
            "Vec" if punct_run(toks, i + 1, "::") && ident_at(toks, i + 3) == Some("new") => {
                "`Vec::new()`"
            }
            "vec" if next == Some('!') => "`vec![…]`",
            "clone" if prev == Some('.') && next == Some('(') => "`.clone()`",
            "to_vec" if prev == Some('.') && next == Some('(') => "`.to_vec()`",
            "collect"
                if prev == Some('.') && (next == Some('(') || punct_run(toks, i + 1, "::<")) =>
            {
                "`.collect()`"
            }
            _ => continue,
        };
        out.push(AllocSite { idx: i, line: toks[i].line, what });
    }
    out
}

/// The spawn shape a call site matches, if any: `spawn(…)`/`.spawn(…)`
/// in any form, or `thread::scope(…)` (the crossbeam scoped-thread entry).
pub fn spawn_shape(call: &CallSite) -> Option<&'static str> {
    if call.callee == "spawn" {
        return Some("`spawn(…)`");
    }
    if call.callee == "scope" && call.qualifier.as_deref() == Some("thread") {
        return Some("`thread::scope(…)`");
    }
    None
}

/// Method names that block on I/O (a summary fact, not a finding: a sink
/// writing under its own flat lock is the workspace's serialisation
/// point, not a hazard).
const IO_BLOCKING: [&str; 6] =
    ["write_all", "flush", "read_to_end", "read_exact", "read_line", "sync_all"];

/// The synchronous-wait shape a call site matches (`handle.join()`,
/// `rx.recv()`): blocking on another thread while a guard is held is the
/// classic deadlock shape, so these *are* findings under a lock.
pub fn sync_block_shape(toks: &[Token], call: &CallSite) -> Option<&'static str> {
    if !call.is_method || !empty_args(toks, call.idx) {
        return None;
    }
    match call.callee.as_str() {
        "join" => Some("`join()`"),
        "recv" => Some("`recv()`"),
        _ => None,
    }
}

/// The I/O-blocking shape a call site matches, if any.
pub fn io_block_shape(call: &CallSite) -> Option<&'static str> {
    (call.is_method && IO_BLOCKING.contains(&call.callee.as_str())).then_some("I/O call")
}

/// Whether the call at token index `idx` has an empty argument list
/// directly after the callee name.
pub(crate) fn empty_args(toks: &[Token], idx: usize) -> bool {
    punct_at(toks, idx + 1) == Some('(') && punct_at(toks, idx + 2) == Some(')')
}

/// A witness for one summary fact: where the concrete site is, and the
/// call chain (qualified function names, outermost first, the summarised
/// function itself excluded) that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// Call chain below the summarised function; empty for direct facts.
    pub via: Vec<String>,
    /// File label of the concrete site.
    pub file: String,
    /// 1-based line of the concrete site.
    pub line: usize,
    /// Rendered shape of the site.
    pub what: String,
}

impl Fact {
    /// `` `what` at file:line (via `f` → `g`) `` — the witness clause used
    /// in transitive finding messages.
    pub fn render(&self) -> String {
        let site = format!("{} at {}:{}", self.what, self.file, self.line);
        if self.via.is_empty() {
            site
        } else {
            let chain = self.via.iter().map(|f| format!("`{f}`")).collect::<Vec<_>>().join(" → ");
            format!("{site}, via {chain}")
        }
    }
}

/// The monotone fact set of one function.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// First known allocation site, direct or transitive.
    pub allocates: Option<Fact>,
    /// First known spawn site, direct or transitive.
    pub spawns: Option<Fact>,
    /// First known synchronous wait (`join()`/`recv()`).
    pub blocks_sync: Option<Fact>,
    /// First known I/O call (diagnostic only; never a finding by itself).
    pub blocks_io: Option<Fact>,
    /// Lock identity → witness, for every lock the function may take.
    pub acquires: BTreeMap<String, Fact>,
}

/// Per-node summaries, indexed like [`CallGraph::nodes`].
#[derive(Debug)]
pub struct Summaries {
    /// `per_node[i]` summarises `graph.nodes[i]`.
    pub per_node: Vec<Summary>,
}

impl Summaries {
    /// Builds the summaries bottom-up: direct facts per body, then a
    /// fixpoint over the call edges (facts only grow, so the loop
    /// terminates).
    pub fn build(files: &[SourceFile], graph: &CallGraph) -> Summaries {
        let mut per_node: Vec<Summary> = graph
            .nodes
            .iter()
            .map(|n| {
                if n.in_tests {
                    return Summary::default();
                }
                direct_summary(&files[n.file], n.def)
            })
            .collect();

        loop {
            let mut changed = false;
            for i in 0..per_node.len() {
                if graph.nodes[i].in_tests {
                    continue;
                }
                for &j in &graph.edges[i] {
                    let callee_name = {
                        let n = &graph.nodes[j];
                        files[n.file].defs[n.def].qualified()
                    };
                    let callee = per_node[j].clone();
                    let me = &mut per_node[i];
                    changed |= inherit(&mut me.allocates, &callee.allocates, &callee_name);
                    changed |= inherit(&mut me.spawns, &callee.spawns, &callee_name);
                    changed |= inherit(&mut me.blocks_sync, &callee.blocks_sync, &callee_name);
                    changed |= inherit(&mut me.blocks_io, &callee.blocks_io, &callee_name);
                    for (id, fact) in &callee.acquires {
                        if !me.acquires.contains_key(id) {
                            me.acquires.insert(id.clone(), prefixed(fact, &callee_name));
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return Summaries { per_node };
            }
        }
    }
}

/// Copies a callee fact into an unset caller slot, prefixing the chain.
fn inherit(slot: &mut Option<Fact>, callee: &Option<Fact>, callee_name: &str) -> bool {
    match (slot.is_none(), callee) {
        (true, Some(fact)) => {
            *slot = Some(prefixed(fact, callee_name));
            true
        }
        _ => false,
    }
}

fn prefixed(fact: &Fact, callee_name: &str) -> Fact {
    let mut via = Vec::with_capacity(fact.via.len() + 1);
    via.push(callee_name.to_string());
    via.extend(fact.via.iter().cloned());
    Fact { via, file: fact.file.clone(), line: fact.line, what: fact.what.clone() }
}

/// The direct (one-body, no-calls) facts of one definition.
fn direct_summary(file: &SourceFile, def_idx: usize) -> Summary {
    let def = &file.defs[def_idx];
    let mut s = Summary::default();
    let Some((open, close)) = def.item.body else { return s };
    let toks = &file.lexed.tokens;

    if let Some(site) = alloc_sites(toks, open, close).into_iter().next() {
        s.allocates = Some(Fact {
            via: Vec::new(),
            file: file.label.clone(),
            line: site.line,
            what: site.what.to_string(),
        });
    }
    for call in call_sites(toks, open, close) {
        let fact = |what: &str| Fact {
            via: Vec::new(),
            file: file.label.clone(),
            line: call.line,
            what: what.to_string(),
        };
        if s.spawns.is_none() {
            if let Some(what) = spawn_shape(&call) {
                s.spawns = Some(fact(what));
            }
        }
        if s.blocks_sync.is_none() {
            if let Some(what) = sync_block_shape(toks, &call) {
                s.blocks_sync = Some(fact(what));
            }
        }
        if s.blocks_io.is_none() {
            if let Some(what) = io_block_shape(&call) {
                s.blocks_io = Some(fact(format!("{} `{}(…)`", what, call.callee).as_str()));
            }
        }
    }
    for acq in crate::locks::fn_acquisitions(file, def) {
        s.acquires.entry(acq.id.clone()).or_insert_with(|| Fact {
            via: Vec::new(),
            file: file.label.clone(),
            line: acq.line,
            what: acq.how.clone(),
        });
    }
    s
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    toks.get(i).and_then(ident)
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    toks.get(i).and_then(punct)
}

/// Whether the puncts starting at `i` spell exactly `pat`.
pub(crate) fn punct_run(toks: &[Token], i: usize, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(k, c)| toks.get(i + k).map(|t| t.kind == TokenKind::Punct(c)).unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn summaries(src: &str) -> (Vec<SourceFile>, CallGraph, Summaries) {
        let files = vec![SourceFile::parse("fixture.rs", src)];
        let graph = CallGraph::build(&files);
        let s = Summaries::build(&files, &graph);
        (files, graph, s)
    }

    fn summary_of<'a>(
        files: &[SourceFile],
        graph: &CallGraph,
        s: &'a Summaries,
        name: &str,
    ) -> &'a Summary {
        let i = graph
            .nodes
            .iter()
            .position(|n| files[n.file].defs[n.def].item.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"));
        &s.per_node[i]
    }

    #[test]
    fn alloc_sites_match_the_hot_path_shapes() {
        let lexed = crate::lexer::lex(
            "fn f() { let a = Vec::new(); let b = vec![0; 4]; let c = x.clone(); \
             let d = y.to_vec(); let e = it.collect::<Vec<_>>(); \
             let ok = Vec::with_capacity(8); }",
        );
        let sites = alloc_sites(&lexed.tokens, 0, lexed.tokens.len() - 1);
        let whats: Vec<&str> = sites.iter().map(|s| s.what).collect();
        assert_eq!(
            whats,
            vec!["`Vec::new()`", "`vec![…]`", "`.clone()`", "`.to_vec()`", "`.collect()`"]
        );
    }

    #[test]
    fn direct_facts_cover_alloc_spawn_and_blocking() {
        let src = "fn a() { let v = Vec::new(); }\n\
                   fn s() { thread::scope(|sc| { sc.spawn(|_| {}); }); }\n\
                   fn b() { handle.join(); }\n\
                   fn io(w: &mut W) { w.write_all(buf); }";
        let (files, graph, s) = summaries(src);
        assert!(summary_of(&files, &graph, &s, "a").allocates.is_some());
        assert!(summary_of(&files, &graph, &s, "s").spawns.is_some());
        assert!(summary_of(&files, &graph, &s, "b").blocks_sync.is_some());
        let io = summary_of(&files, &graph, &s, "io");
        assert!(io.blocks_io.is_some() && io.blocks_sync.is_none());
    }

    #[test]
    fn facts_propagate_up_the_call_chain_with_witness_paths() {
        let src = "fn top() { mid(); }\nfn mid() { leaf(); }\n\
                   fn leaf() { let v = vec![0.0; 4]; }";
        let (files, graph, s) = summaries(src);
        let top = summary_of(&files, &graph, &s, "top");
        let fact = top.allocates.as_ref().expect("transitive alloc");
        assert_eq!(fact.via, vec!["mid".to_string(), "leaf".to_string()]);
        assert_eq!(fact.what, "`vec![…]`");
        assert!(fact.render().contains("via `mid` → `leaf`"), "{}", fact.render());
    }

    #[test]
    fn acquires_propagate_and_keep_lock_identities() {
        let src = "impl Pool {\n\
                   fn outer(&self) { self.refill(); }\n\
                   fn refill(&self) { let g = self.slots.lock(); g.len(); }\n\
                   }";
        let (files, graph, s) = summaries(src);
        let outer = summary_of(&files, &graph, &s, "outer");
        assert!(outer.acquires.contains_key("Pool::slots"), "{:?}", outer.acquires);
        assert_eq!(outer.acquires["Pool::slots"].via, vec!["Pool::refill".to_string()]);
    }

    #[test]
    fn test_module_bodies_contribute_no_facts() {
        let src = "fn lib() { helper(); }\nfn helper() {}\n\
                   #[cfg(test)]\nmod tests {\n fn helper() { let v = Vec::new(); } \n}";
        let (files, graph, s) = summaries(src);
        // `helper()` resolves to both the library and the test helper; the
        // test one must not leak its allocation into `lib`.
        assert!(summary_of(&files, &graph, &s, "lib").allocates.is_none());
    }
}
