//! Workspace traversal: which files get linted, and the aggregate
//! report `subfed-lint check` builds from them.
//!
//! The scan covers the **library code** of the four correctness-critical
//! crates (`tensor`, `nn`, `pruning`, `core`) — `src/**/*.rs`, minus
//! integration-test trees and any module a crate declares as
//! `#[cfg(test)] mod name;`. Benches, `vendor/`, the CLI, and this crate
//! are out of scope: panics there abort one process, not a federation.

use crate::rules::{analyze_source, cfg_test_mod_decls, Finding, ALL_RULES};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees `subfed-lint check` walks.
pub const TARGET_CRATES: [&str; 4] = ["tensor", "nn", "pruning", "core"];

/// Crates whose `src/` trees `subfed-lint analyze` walks: the `check`
/// set plus `metrics`, whose sinks are the workspace's most
/// lock-dependent code — the concurrency rules must see them, while the
/// hot-path rules skip them (see `crate::dataflow`).
pub const ANALYZE_CRATES: [&str; 5] = ["tensor", "nn", "pruning", "core", "metrics"];

/// The outcome of one full workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed ones included.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not silenced by an allow comment.
    pub fn unsuppressed(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.suppressed).collect()
    }

    /// `(total, suppressed)` counts per rule id, in catalog order.
    pub fn per_rule_counts(&self) -> Vec<(&'static str, usize, usize)> {
        ALL_RULES
            .iter()
            .map(|&rule| {
                let total = self.findings.iter().filter(|f| f.rule == rule).count();
                let sup = self.findings.iter().filter(|f| f.rule == rule && f.suppressed).count();
                (rule, total, sup)
            })
            .collect()
    }

    /// The summary table printed after the findings.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("scanned {} files\n", self.files_scanned));
        for (rule, total, sup) in self.per_rule_counts() {
            s.push_str(&format!("  {rule:<18} {:>3} finding(s), {sup} allowed\n", total));
        }
        let live = self.unsuppressed().len();
        if live == 0 {
            s.push_str("clean: no unsuppressed findings\n");
        } else {
            s.push_str(&format!("{live} unsuppressed finding(s)\n"));
        }
        s
    }
}

/// Locates the workspace root: walks up from `start` until a directory
/// holding both `Cargo.toml` and `crates/` appears.
///
/// # Errors
///
/// Returns a message when no ancestor looks like the workspace.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace root (Cargo.toml + crates/) above {}",
                start.display()
            ));
        }
    }
}

/// Recursively lists `.rs` files under `dir`, sorted for deterministic
/// output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Collects the `(label, source)` pairs a lint command scans: the given
/// crates' library `.rs` files, minus modules declared
/// `#[cfg(test)] mod name;`. Labels are workspace-relative with `/`
/// separators; the list is sorted by label within each crate.
///
/// # Errors
///
/// Returns a message when a source tree cannot be read.
pub fn crate_sources(root: &Path, crates: &[&str]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for krate in crates {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            return Err(format!("missing crate source tree {}", src.display()));
        }
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;

        // First pass: collect `#[cfg(test)] mod x;` declarations so the
        // backing files are skipped wholesale.
        let mut sources: BTreeMap<PathBuf, String> = BTreeMap::new();
        let mut test_files: Vec<PathBuf> = Vec::new();
        for f in &files {
            let text = fs::read_to_string(f).map_err(|e| format!("read {}: {e}", f.display()))?;
            for m in cfg_test_mod_decls(&text) {
                let dir = f.parent().unwrap_or(&src);
                test_files.push(dir.join(format!("{m}.rs")));
                test_files.push(dir.join(&m).join("mod.rs"));
            }
            sources.insert(f.clone(), text);
        }

        for (path, text) in sources {
            if test_files.contains(&path) {
                continue;
            }
            let label =
                path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            out.push((label, text));
        }
    }
    Ok(out)
}

/// The `check` scan set: [`TARGET_CRATES`]' library sources.
///
/// # Errors
///
/// Returns a message when a source tree cannot be read.
pub(crate) fn library_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    crate_sources(root, &TARGET_CRATES)
}

/// Runs every rule over the target crates' library sources under `root`.
///
/// # Errors
///
/// Returns a message when a source tree cannot be read.
#[must_use = "the report carries the findings and the exit status"]
pub fn check_workspace(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    for (label, text) in library_sources(root)? {
        report.findings.extend(analyze_source(&label, &text));
        report.files_scanned += 1;
    }
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_workspace_root_from_nested_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/tensor/src/lib.rs").is_file());
    }

    #[test]
    fn workspace_scan_covers_all_target_crates() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let report = check_workspace(&root).expect("scan");
        assert!(report.files_scanned >= 30, "only {} files", report.files_scanned);
        // tests_support.rs is declared `#[cfg(test)] mod` by subfed-core
        // and must not be scanned.
        assert!(report.findings.iter().all(|f| !f.file.contains("tests_support")));
    }

    #[test]
    fn workspace_is_clean() {
        // The acceptance gate of the lint itself: zero unsuppressed
        // findings in the four library crates.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let report = check_workspace(&root).expect("scan");
        let live = report.unsuppressed();
        assert!(
            live.is_empty(),
            "unsuppressed findings:\n{}",
            live.iter().map(|f| f.render()).collect::<Vec<_>>().join("\n")
        );
    }
}
