//! Totality analysis: interprocedural panic-reachability, overflow-prone
//! length arithmetic, and swallowed errors.
//!
//! The decode→fold→aggregate spine must survive arbitrary bytes from
//! millions of untrusted clients, so the functions on it have to be
//! *total*: every input returns `Ok` or a typed `Err`, never a panic.
//! This module proves that statically and keeps it proven:
//!
//! * **Panic sources** are extracted per function from the token stream:
//!   panicking macros (`panic!`, `todo!`, `unimplemented!`,
//!   `unreachable!`, the `assert*!` family — `debug_assert*!` is exempt
//!   because it compiles out of release servers), `.unwrap()` /
//!   `.expect(…)`, bare slice indexing `x[i]` / `x[a..b]`, and `/` / `%`
//!   with a non-literal divisor. The poison-tolerant
//!   `lock_unpoisoned` idiom contains none of these shapes and so is
//!   total by construction, not by special case.
//! * **Reachability** is a breadth-first walk from each entry in
//!   [`TOTAL_ENTRIES`] (plus any `// lint: total`-marked function) over
//!   the same name-resolved call graph the lock and taint analyses use,
//!   with parent pointers kept so every witness carries a full
//!   `via` chain (`entry → f → g`), same shape as `alloc-under-lock`.
//! * Three rules come out of the walk: [`PANIC_REACHABLE`] (a panic
//!   source on a total path), [`ARITH_OVERFLOW`] (unchecked `+`/`*`/`<<`
//!   on length/index-flavoured operands on a total path — the `4 * kept`
//!   class of bug), and [`ERROR_SWALLOW`] (a `*Error`-carrying `Result`
//!   discarded with `let _ =` or `.ok()` outside tests, anywhere in the
//!   analyzed crates).
//! * [`certify`] condenses the walk into a per-entry **panic-freedom
//!   certificate** (entry, verdict, witness count, allow count) that
//!   `subfed-lint certify` emits and CI diffs against the committed
//!   `CERTIFIED.json`, so the certified surface only changes on purpose.
//!
//! Like every analysis here, this is an over-approximation on names, not
//! types: a finding means "this shape is on a total path as far as the
//! call graph can tell", and a counted `// lint: allow(panic-reachable)`
//! on the site is the escape hatch for the cases the analysis cannot see
//! are safe. Method names in [`TOTAL_SHADOWED`] do not resolve
//! unqualified: an unadorned `.map(…)`/`.push(…)` is overwhelmingly an
//! iterator adapter or `Vec::push`, and resolving it to `Tensor::map` or
//! `History::push` by name alone would drag the whole tensor layer into
//! every entry's closure.

use std::collections::{BTreeMap, VecDeque};
use std::path::Path;

use crate::callgraph::{resolve, CallGraph, SourceFile};
use crate::lexer::{MarkerKind, Token, TokenKind};
use crate::parser::call_sites;
use crate::rules::{ident, punct, Finding};
use crate::summaries::Fact;
use crate::walk::{crate_sources, ANALYZE_CRATES};

/// Rule id: a panic source is reachable from a total entry point.
pub const PANIC_REACHABLE: &str = "panic-reachable";
/// Rule id: unchecked length/index arithmetic on a total path.
pub const ARITH_OVERFLOW: &str = "arith-overflow";
/// Rule id: an error-carrying `Result` is silently discarded.
pub const ERROR_SWALLOW: &str = "error-swallow";

/// Built-in total entry points (qualified names): the decode→fold spine
/// plus the registry/sampler surfaces a server feeds untrusted or
/// operator-supplied bytes. Extend with `// lint: total` markers.
pub const TOTAL_ENTRIES: [&str; 6] = [
    "ClientRegistry::load",
    "OrderedAccumulator::fold",
    "StreamingAccumulator::fold",
    "UniformSampler::sample",
    "decode_update",
    "decode_update_q8",
];

/// Method names that only resolve when path-qualified, over and above
/// the call graph's std-shadowed set (`len`/`is_empty`/`clone`): each has
/// a workspace impl, but unqualified call sites are overwhelmingly std
/// (`Iterator::map`/`min`/`max`, `Vec::push`).
pub const TOTAL_SHADOWED: [&str; 4] = ["map", "max", "min", "push"];

/// Macros whose expansion can panic at runtime. `debug_assert*!` is
/// deliberately absent: it is compiled out of the release binaries a
/// server runs, so it documents an invariant without breaking totality.
const PANICKING_MACROS: [&str; 7] =
    ["assert", "assert_eq", "assert_ne", "panic", "todo", "unimplemented", "unreachable"];

/// Identifier fragments that mark an operand as byte-length or index
/// math — the arithmetic whose silent wraparound turns a malformed
/// header into an under-allocation or out-of-bounds slice.
const LEN_HINTS: [&str; 19] = [
    "byte",
    "cap",
    "cohort",
    "count",
    "dim",
    "end",
    "idx",
    "index",
    "kept",
    "len",
    "need",
    "off",
    "offset",
    "param",
    "pos",
    "registered",
    "size",
    "slot",
    "start",
];

/// Keywords that can precede `[` or an operator without forming an
/// expression operand (`let [a, b] = …`, `as *const f32`, …).
const EXPR_KEYWORDS: [&str; 26] = [
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn", "for", "if", "impl",
    "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static", "struct",
    "trait", "while",
];

/// One may-panic site inside a single function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// 1-based source line.
    pub line: usize,
    /// Rendered shape (`` `.unwrap()` ``, `` `buf[…]` indexing ``, …).
    pub what: String,
}

/// One unchecked length-arithmetic site inside a single function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArithSite {
    /// 1-based source line.
    pub line: usize,
    /// The operator (`+`, `*`, `<<`, or their `=`-compound forms).
    pub op: String,
    /// The operand identifier that tripped the length-math heuristic.
    pub hint: String,
}

fn is_expr_operand(tok: Option<&Token>) -> bool {
    match tok.map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => !EXPR_KEYWORDS.contains(&s.as_str()),
        Some(TokenKind::Int(_)) => true,
        Some(TokenKind::Punct(c)) => matches!(c, ')' | ']'),
        _ => false,
    }
}

fn operand_ident(tok: Option<&Token>) -> Option<&str> {
    match tok.map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) if !EXPR_KEYWORDS.contains(&s.as_str()) => Some(s),
        _ => None,
    }
}

fn len_hinted(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    LEN_HINTS.iter().any(|h| lower.contains(h))
}

/// Extracts every may-panic shape in `toks[open..=close]`.
pub fn panic_sites(toks: &[Token], open: usize, close: usize) -> Vec<PanicSite> {
    let mut out = Vec::new();
    for i in open..=close.min(toks.len().saturating_sub(1)) {
        let line = toks[i].line;
        match &toks[i].kind {
            TokenKind::Ident(name) => {
                let next = toks.get(i + 1).and_then(punct);
                if PANICKING_MACROS.contains(&name.as_str()) && next == Some('!') {
                    out.push(PanicSite { line, what: format!("`{name}!`") });
                } else if (name == "unwrap" || name == "expect")
                    && toks.get(i.wrapping_sub(1)).and_then(punct) == Some('.')
                    && next == Some('(')
                    && i > 0
                {
                    out.push(PanicSite { line, what: format!("`.{name}()`") });
                }
            }
            TokenKind::Punct('[') if i > open => {
                // `x[i]` / `f(..)[i]` / `x[a..b]` indexing. Array
                // literals, attributes, slice patterns, and types are
                // excluded by what precedes the bracket.
                let prev = toks.get(i - 1);
                if is_expr_operand(prev) {
                    let what = match operand_ident(prev) {
                        Some(recv) => format!("`{recv}[…]` indexing"),
                        None => "`[…]` indexing".to_string(),
                    };
                    out.push(PanicSite { line, what });
                }
            }
            TokenKind::Punct(c @ ('/' | '%')) if i > open => {
                if !is_expr_operand(toks.get(i - 1)) {
                    continue; // not a binary use (path sep is `::`, never `/`)
                }
                let div_at =
                    if toks.get(i + 1).and_then(punct) == Some('=') { i + 2 } else { i + 1 };
                let literal = matches!(
                    toks.get(div_at).map(|t| &t.kind),
                    Some(TokenKind::Int(_)) | Some(TokenKind::Float)
                );
                if !literal {
                    out.push(PanicSite { line, what: format!("`{c}` by a non-literal divisor") });
                }
            }
            _ => {}
        }
    }
    out
}

/// Extracts every unchecked `+`/`*`/`<<` (and `=`-compound form) whose
/// operand names look like byte-length or index math. Float operands and
/// hint-free operands are skipped — the rule targets the `4 * kept`
/// class, not arithmetic in general.
pub fn arith_sites(toks: &[Token], open: usize, close: usize) -> Vec<ArithSite> {
    let mut out = Vec::new();
    for i in open..=close.min(toks.len().saturating_sub(1)) {
        let line = toks[i].line;
        let (op, rhs_at) = match toks[i].kind {
            TokenKind::Punct(c @ ('+' | '*')) => {
                if toks.get(i + 1).and_then(punct) == Some('=') {
                    (format!("{c}="), i + 2)
                } else {
                    (c.to_string(), i + 1)
                }
            }
            TokenKind::Punct('<') => {
                // `<<` / `<<=`, first token of the pair only.
                if toks.get(i + 1).and_then(punct) != Some('<')
                    || (i > 0 && toks.get(i - 1).and_then(punct) == Some('<'))
                {
                    continue;
                }
                if toks.get(i + 2).and_then(punct) == Some('=') {
                    ("<<=".to_string(), i + 3)
                } else {
                    ("<<".to_string(), i + 2)
                }
            }
            _ => continue,
        };
        if i == open || !is_expr_operand(toks.get(i - 1)) {
            continue; // unary `*`/`&`-adjacent or type position
        }
        let float_adjacent = matches!(toks.get(i - 1).map(|t| &t.kind), Some(TokenKind::Float))
            || matches!(toks.get(rhs_at).map(|t| &t.kind), Some(TokenKind::Float));
        if float_adjacent {
            continue;
        }
        let hint = [operand_ident(toks.get(i - 1)), operand_ident(toks.get(rhs_at))]
            .into_iter()
            .flatten()
            .find(|n| len_hinted(n));
        if let Some(hint) = hint {
            out.push(ArithSite { line, op, hint: hint.to_string() });
        }
    }
    out
}

/// One reachable hazard, attributed to the entry whose walk found it.
#[derive(Debug, Clone)]
pub struct Witness {
    /// [`PANIC_REACHABLE`] or [`ARITH_OVERFLOW`].
    pub rule: &'static str,
    /// Site and `via` chain (entry excluded, containing function last).
    pub fact: Fact,
}

/// The totality walk of one entry point.
#[derive(Debug, Clone)]
pub struct EntryAudit {
    /// Qualified entry name (`ClientRegistry::load`, `decode_update`).
    pub entry: String,
    /// Every panic/arith site reachable from the entry.
    pub witnesses: Vec<Witness>,
}

/// Call edges for the totality walk: the analyzer's name resolution with
/// [`TOTAL_SHADOWED`] names held back and test nodes dropped.
fn totality_edges(files: &[SourceFile], graph: &CallGraph) -> Vec<Vec<usize>> {
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes.len()];
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.in_tests {
            continue;
        }
        let def = &files[node.file].defs[node.def];
        let Some((open, close)) = def.item.body else { continue };
        for call in call_sites(&files[node.file].lexed.tokens, open, close) {
            if call.is_method
                && call.qualifier.is_none()
                && TOTAL_SHADOWED.contains(&call.callee.as_str())
            {
                continue;
            }
            let targets = resolve(
                &graph.nodes,
                files,
                node,
                &call.callee,
                call.qualifier.as_deref(),
                call.is_method,
            );
            for t in targets {
                if !graph.nodes[t].in_tests && !edges[i].contains(&t) {
                    edges[i].push(t);
                }
            }
        }
    }
    edges
}

/// Whether `def` in `file` carries a `// lint: total` marker.
fn total_marked(file: &SourceFile, def_line: usize) -> bool {
    file.lexed
        .markers
        .iter()
        .any(|m| m.kind == MarkerKind::Total && (m.line == def_line || m.line + 1 == def_line))
}

/// Runs the totality walk for every entry point, in entry-name order.
pub fn audit_entries(files: &[SourceFile], graph: &CallGraph) -> Vec<EntryAudit> {
    let edges = totality_edges(files, graph);
    let mut entries: Vec<(String, usize)> = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.in_tests {
            continue;
        }
        let def = &files[node.file].defs[node.def];
        let q = def.qualified();
        if TOTAL_ENTRIES.contains(&q.as_str()) || total_marked(&files[node.file], def.item.line) {
            entries.push((q, i));
        }
    }
    entries.sort();
    entries.iter().map(|(q, i)| audit_one(q, *i, files, graph, &edges)).collect()
}

fn audit_one(
    entry: &str,
    start: usize,
    files: &[SourceFile],
    graph: &CallGraph,
    edges: &[Vec<usize>],
) -> EntryAudit {
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut seen = vec![false; graph.nodes.len()];
    let mut order = Vec::new();
    let mut queue = VecDeque::from([start]);
    seen[start] = true;
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for &t in &edges[n] {
            if !seen[t] {
                seen[t] = true;
                parent[t] = Some(n);
                queue.push_back(t);
            }
        }
    }
    let mut witnesses = Vec::new();
    for n in order {
        let node = &graph.nodes[n];
        let file = &files[node.file];
        let def = &file.defs[node.def];
        let Some((open, close)) = def.item.body else { continue };
        // The chain from the entry's first callee down to `n` (empty for
        // sites in the entry itself) — the `via` path of each witness.
        let mut via = Vec::new();
        let mut at = n;
        while at != start {
            let d = &files[graph.nodes[at].file].defs[graph.nodes[at].def];
            via.push(d.qualified());
            at = parent[at].expect("BFS parent chain reaches the entry");
        }
        via.reverse();
        let toks = &file.lexed.tokens;
        for s in panic_sites(toks, open, close) {
            witnesses.push(Witness {
                rule: PANIC_REACHABLE,
                fact: Fact {
                    via: via.clone(),
                    file: file.label.clone(),
                    line: s.line,
                    what: s.what,
                },
            });
        }
        for s in arith_sites(toks, open, close) {
            witnesses.push(Witness {
                rule: ARITH_OVERFLOW,
                fact: Fact {
                    via: via.clone(),
                    file: file.label.clone(),
                    line: s.line,
                    what: format!("unchecked `{}` on `{}`", s.op, s.hint),
                },
            });
        }
    }
    EntryAudit { entry: entry.to_string(), witnesses }
}

/// All findings of the three totality rules, deduplicated across entries
/// (the first entry in name order claims a shared site).
pub fn totality_findings(files: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    let mut dedup: BTreeMap<(String, usize, &'static str), Finding> = BTreeMap::new();
    for audit in audit_entries(files, graph) {
        for w in &audit.witnesses {
            let key = (w.fact.file.clone(), w.fact.line, w.rule);
            if dedup.contains_key(&key) {
                continue;
            }
            let chain = if w.fact.via.is_empty() {
                String::new()
            } else {
                let path =
                    w.fact.via.iter().map(|f| format!("`{f}`")).collect::<Vec<_>>().join(" → ");
                format!(", via {path}")
            };
            let message = match w.rule {
                PANIC_REACHABLE => format!(
                    "{} is reachable from total entry `{}`{chain} — return a typed error instead",
                    w.fact.what, audit.entry
                ),
                _ => format!(
                    "{} on the total path from `{}`{chain} — use checked_*/saturating_* math",
                    w.fact.what, audit.entry
                ),
            };
            dedup.insert(
                key,
                Finding {
                    file: w.fact.file.clone(),
                    line: w.fact.line,
                    rule: w.rule,
                    message,
                    suppressed: false,
                },
            );
        }
    }
    let mut out: Vec<Finding> = dedup.into_values().collect();
    out.extend(swallow_findings(files, graph));
    out
}

/// `error-swallow`: calls whose `*Error`-carrying `Result` is discarded
/// with `let _ = …` or a trailing `.ok()`, outside test modules.
fn swallow_findings(files: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    // Workspace functions returning `Result<_, SomethingError>`: the
    // return-type tokens sit between `->` and the body's `{`.
    let mut carries: BTreeMap<usize, String> = BTreeMap::new();
    for (n, node) in graph.nodes.iter().enumerate() {
        let file = &files[node.file];
        let def = &file.defs[node.def];
        let Some((open, _)) = def.item.body else { continue };
        let toks = &file.lexed.tokens;
        let mut arrow = None;
        for i in def.item.name_idx..open {
            if crate::summaries::punct_run(toks, i, "->") {
                arrow = Some(i + 2);
                break;
            }
        }
        let Some(lo) = arrow else { continue };
        let ret: Vec<&str> = toks[lo..open].iter().filter_map(ident).collect();
        if ret.contains(&"Result") {
            if let Some(err) = ret.iter().find(|s| s.ends_with("Error")) {
                carries.insert(n, err.to_string());
            }
        }
    }
    let mut out = Vec::new();
    for (ci, node) in graph.nodes.iter().enumerate() {
        if node.in_tests {
            continue;
        }
        let file = &files[node.file];
        let def = &file.defs[node.def];
        let Some((open, close)) = def.item.body else { continue };
        let toks = &file.lexed.tokens;
        for call in call_sites(toks, open, close) {
            let targets = resolve(
                &graph.nodes,
                files,
                &graph.nodes[ci],
                &call.callee,
                call.qualifier.as_deref(),
                call.is_method,
            );
            let Some(err) = targets.iter().find_map(|t| carries.get(t)) else { continue };
            let how = if discarded_by_let(toks, call.idx) {
                Some("`let _ =`")
            } else if discarded_by_ok(toks, call.idx, close) {
                Some("`.ok()`")
            } else {
                None
            };
            if let Some(how) = how {
                out.push(Finding {
                    file: file.label.clone(),
                    line: call.line,
                    rule: ERROR_SWALLOW,
                    message: format!(
                        "result of `{}` (carries `{err}`) is discarded by {how} — handle or \
                         propagate the error",
                        call.callee
                    ),
                    suppressed: false,
                });
            }
        }
    }
    out
}

/// Whether the call at `idx` sits directly under a `let _ =` binding
/// (receiver/path tokens between `=` and the callee are walked over).
fn discarded_by_let(toks: &[Token], idx: usize) -> bool {
    let mut j = idx;
    while j > 0 {
        match &toks[j - 1].kind {
            TokenKind::Ident(s) if s != "let" && s != "_" => j -= 1,
            TokenKind::Punct('.') | TokenKind::Punct(':') | TokenKind::Punct('&') => j -= 1,
            _ => break,
        }
    }
    j >= 3
        && toks[j - 1].kind == TokenKind::Punct('=')
        && toks[j - 2].kind == TokenKind::Ident("_".into())
        && toks[j - 3].kind == TokenKind::Ident("let".into())
}

/// Whether the call at `idx` is immediately followed by `.ok()` after
/// its argument list closes.
fn discarded_by_ok(toks: &[Token], idx: usize, close: usize) -> bool {
    let at = |i: usize| toks.get(i).and_then(punct);
    let mut i = idx + 1;
    // Step over a turbofish, then require the argument list.
    if at(i) == Some(':') {
        while i <= close && at(i) != Some('(') {
            i += 1;
        }
    }
    if i > close || at(i) != Some('(') {
        return false;
    }
    let mut depth = 0usize;
    while i <= close {
        match at(i) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    at(i + 1) == Some('.')
        && toks.get(i + 2).and_then(ident) == Some("ok")
        && at(i + 3) == Some('(')
        && at(i + 4) == Some(')')
}

/// One line of the panic-freedom certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryCertificate {
    /// Qualified entry name.
    pub entry: String,
    /// `panic-free` when no unsuppressed witness remains.
    pub verdict: &'static str,
    /// Unsuppressed witness count (should be 0).
    pub witnesses: usize,
    /// Witnesses silenced by a counted `// lint: allow(…)`.
    pub allows: usize,
}

/// Condenses the totality walk into the per-entry certificate,
/// honouring `// lint: allow(panic-reachable|arith-overflow)` comments
/// on or directly above each witness line.
pub fn certify(files: &[SourceFile], graph: &CallGraph) -> Vec<EntryCertificate> {
    let allows: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.label.as_str(), f)).collect();
    audit_entries(files, graph)
        .into_iter()
        .map(|audit| {
            let (mut live, mut silenced) = (0usize, 0usize);
            for w in &audit.witnesses {
                let allowed = allows.get(w.fact.file.as_str()).is_some_and(|f| {
                    f.lexed.allows.iter().any(|a| {
                        (a.line == w.fact.line || a.line + 1 == w.fact.line)
                            && a.rules.iter().any(|r| r == w.rule)
                    })
                });
                if allowed {
                    silenced += 1;
                } else {
                    live += 1;
                }
            }
            EntryCertificate {
                entry: audit.entry,
                verdict: if live == 0 { "panic-free" } else { "panics-reachable" },
                witnesses: live,
                allows: silenced,
            }
        })
        .collect()
}

/// Parses the analyzed crates under `root` and certifies every entry.
/// Returns the certificates and the number of files scanned.
pub fn certify_workspace(root: &Path) -> Result<(Vec<EntryCertificate>, usize), String> {
    let sources = crate_sources(root, &ANALYZE_CRATES)?;
    let files: Vec<SourceFile> =
        sources.iter().map(|(label, text)| SourceFile::parse(label, text)).collect();
    let graph = CallGraph::build(&files);
    let n = files.len();
    Ok((certify(&files, &graph), n))
}

/// The stable JSON rendering of a certificate set — one object per
/// entry, sorted by entry name; the format committed as `CERTIFIED.json`.
pub fn render_certificates_json(certs: &[EntryCertificate]) -> String {
    let mut out = String::from("[\n");
    for (i, c) in certs.iter().enumerate() {
        let sep = if i + 1 == certs.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"entry\":\"{}\",\"verdict\":\"{}\",\"witnesses\":{},\"allows\":{}}}{sep}\n",
            c.entry, c.verdict, c.witnesses, c.allows
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(src: &str) -> Vec<String> {
        let file = SourceFile::parse("t.rs", src);
        let (open, close) = file.defs[0].item.body.expect("fixture fn has a body");
        panic_sites(&file.lexed.tokens, open, close).into_iter().map(|s| s.what).collect()
    }

    #[test]
    fn macros_unwrap_and_indexing_are_panic_sites() {
        let got = sites(
            "fn f(xs: &[u8], i: usize) -> u8 {\n\
             assert!(i > 0);\n\
             let v = xs.first().unwrap();\n\
             xs[i] + v\n\
             }",
        );
        assert_eq!(got, vec!["`assert!`", "`.unwrap()`", "`xs[…]` indexing"]);
    }

    #[test]
    fn debug_assert_vec_macro_and_literal_division_are_exempt() {
        let got = sites(
            "fn f(i: usize) -> usize {\n\
             debug_assert!(i < 8);\n\
             let v = vec![0u8; 4];\n\
             let b = i / 8 + v.len() % 2;\n\
             b\n\
             }",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn non_literal_divisor_and_unwrap_or_distinction() {
        let got = sites("fn f(a: usize, b: usize) -> usize { a.checked_div(b).unwrap_or(a / b) }");
        assert_eq!(got, vec!["`/` by a non-literal divisor"]);
    }

    #[test]
    fn slice_patterns_attributes_and_types_are_not_indexing() {
        let got = sites(
            "fn f(xs: &[u8; 2]) -> [u8; 2] {\n\
             #[allow(unused)]\n\
             let [a, b] = *xs;\n\
             let ys: [u8; 2] = [b, a];\n\
             ys\n\
             }",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    fn arith(src: &str) -> Vec<String> {
        let file = SourceFile::parse("t.rs", src);
        let (open, close) = file.defs[0].item.body.expect("fixture fn has a body");
        arith_sites(&file.lexed.tokens, open, close)
            .into_iter()
            .map(|s| format!("{} {}", s.op, s.hint))
            .collect()
    }

    #[test]
    fn length_flavoured_operands_are_flagged() {
        let got = arith(
            "fn f(kept: usize, n_bytes: usize) -> usize {\n\
             let a = 4 * kept;\n\
             let b = n_bytes + 8;\n\
             a + b\n\
             }",
        );
        assert_eq!(got, vec!["* kept", "+ n_bytes"]);
    }

    #[test]
    fn hint_free_and_float_arithmetic_is_exempt() {
        let got = arith(
            "fn f(i: usize, s: f32) -> f32 {\n\
             let mask = 1u8 << (i % 8);\n\
             let j = i + 1;\n\
             s * 2.0 + (j + mask as usize) as f32\n\
             }",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn generics_are_not_shifts() {
        let got = arith("fn f(v: Vec<Vec<u32>>, idx_list: Option<<u32 as TryInto<u8>>::Error>) -> usize { v.len() }");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn certificate_json_is_stable() {
        let certs = vec![
            EntryCertificate { entry: "a".into(), verdict: "panic-free", witnesses: 0, allows: 1 },
            EntryCertificate {
                entry: "b".into(),
                verdict: "panics-reachable",
                witnesses: 2,
                allows: 0,
            },
        ];
        let json = render_certificates_json(&certs);
        assert_eq!(
            json,
            "[\n  {\"entry\":\"a\",\"verdict\":\"panic-free\",\"witnesses\":0,\"allows\":1},\n  \
             {\"entry\":\"b\",\"verdict\":\"panics-reachable\",\"witnesses\":2,\"allows\":0}\n]\n"
        );
    }
}
