//! Workspace-wide call graph with hot-path reachability.
//!
//! The PR-4 performance contract ("the training hot path never
//! allocates") is a property of *every function reachable from* the
//! per-batch entry points, not just of the entry points themselves. This
//! module builds a name-resolved call graph over all scanned files and
//! computes the reachable-hot set by BFS from:
//!
//! * the built-in entries in [`HOT_ENTRIES`] — the layer-wise
//!   forward/backward workspace paths, the client training loop, and the
//!   blocked/sparse GEMM kernels; and
//! * any function annotated `// lint: hot` (same line as the `fn` or the
//!   line above).
//!
//! A function annotated `// lint: cold` is asserted to run once per
//! round (setup, pruning, aggregation), not once per batch: the BFS does
//! not enter it, which is the supported way to cut a setup helper out of
//! the hot set. Test functions (inside `#[cfg(test)] mod`) never join
//! the hot set.
//!
//! # Name resolution
//!
//! Without type inference, edges are resolved by name with the call
//! shape as a disambiguator — a deliberate over-approximation that errs
//! toward *more* reachability (missing an edge would silently exempt
//! code from the allocation rule):
//!
//! * `Type::assoc(…)` → functions defined in `impl Type` blocks (any
//!   file). An unknown type (`Vec::new`) resolves to nothing.
//! * `Self::assoc(…)` → functions in impls of the caller's own type.
//! * `recv.method(…)` → every method (has a `self` receiver) with that
//!   name, in any impl. Name collisions across types produce spurious
//!   edges; `// lint: cold` on the cold homonym is the escape hatch.
//! * `free(…)` → every free function with that name.

use crate::lexer::{lex, Lexed, MarkerKind};
use crate::parser::{call_sites, parse_file, FnDef};
use crate::rules::test_module_ranges;

/// Built-in hot entry points: per-batch code by construction.
pub const HOT_ENTRIES: [&str; 13] = [
    "forward_ws",
    "backward_ws",
    "train_client_ws",
    "gemm",
    "gemm_ws",
    "gemm_tn",
    "gemm_tn_ws",
    "gemm_nt",
    "gemm_mt",
    "spmm",
    "spmm_t",
    "masked_dot_nt",
    "conv2d_taps_batch",
];

/// One scanned file, parsed once and shared by the graph and the
/// dataflow analyses.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path label used in findings.
    pub label: String,
    /// The full lex result (tokens, allow directives, hot/cold markers).
    pub lexed: Lexed,
    /// Every function definition with its impl context.
    pub defs: Vec<FnDef>,
    /// Token-index spans of `#[cfg(test)] mod` blocks.
    pub test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes and parses one file.
    pub fn parse(label: &str, source: &str) -> SourceFile {
        let lexed = lex(source);
        let test_ranges = test_module_ranges(&lexed.tokens);
        let defs = parse_file(&lexed.tokens);
        SourceFile { label: label.to_string(), lexed, defs, test_ranges }
    }

    /// Whether token index `idx` sits inside a test module.
    pub fn in_tests(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| idx >= lo && idx <= hi)
    }
}

/// Annotation temperature of one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Temp {
    /// No marker: temperature is decided by reachability.
    Default,
    /// `// lint: hot` — an extra entry point.
    Hot,
    /// `// lint: cold` — excluded from hot-path traversal.
    Cold,
}

/// One function in the graph, addressed as `(file, def)` indices.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `defs`.
    pub def: usize,
    /// Marker-assigned temperature.
    pub temp: Temp,
    /// Whether the definition lives inside a `#[cfg(test)] mod`.
    pub in_tests: bool,
}

/// The resolved call graph plus the reachable-hot set.
#[derive(Debug)]
pub struct CallGraph {
    /// All functions, in `(file, def)` order.
    pub nodes: Vec<Node>,
    /// `edges[n]` = node indices `n` may call.
    pub edges: Vec<Vec<usize>>,
    /// For each node, the entry-point name that makes it hot (`None`
    /// when the node is not on the hot path).
    pub hot_witness: Vec<Option<String>>,
}

impl CallGraph {
    /// Builds the graph and the hot set over all `files` at once —
    /// resolution is cross-crate by design (`train_client_ws` in `core`
    /// reaches `gemm` in `tensor`).
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (di, def) in file.defs.iter().enumerate() {
                nodes.push(Node {
                    file: fi,
                    def: di,
                    temp: marker_temp(file, def),
                    in_tests: file.in_tests(def.item.name_idx),
                });
            }
        }

        let def_of = |n: &Node| &files[n.file].defs[n.def];
        let edges: Vec<Vec<usize>> = nodes
            .iter()
            .map(|n| {
                let def = def_of(n);
                let Some((open, close)) = def.item.body else { return Vec::new() };
                let toks = &files[n.file].lexed.tokens;
                let mut out = Vec::new();
                for call in call_sites(toks, open, close) {
                    out.extend(resolve(
                        &nodes,
                        files,
                        n,
                        &call.callee,
                        call.qualifier.as_deref(),
                        call.is_method,
                    ));
                }
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();

        // BFS from the entries; a node's witness is the entry that first
        // reached it (deterministic: entries are visited in node order).
        let mut hot_witness: Vec<Option<String>> = vec![None; nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for (i, n) in nodes.iter().enumerate() {
            if n.in_tests || n.temp == Temp::Cold {
                continue;
            }
            let name = &def_of(n).item.name;
            if n.temp == Temp::Hot || HOT_ENTRIES.contains(&name.as_str()) {
                hot_witness[i] = Some(name.clone());
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            let witness = hot_witness[i].clone().unwrap_or_default();
            for &j in &edges[i] {
                if hot_witness[j].is_some() || nodes[j].temp == Temp::Cold || nodes[j].in_tests {
                    continue;
                }
                hot_witness[j] = Some(witness.clone());
                queue.push_back(j);
            }
        }

        CallGraph { nodes, edges, hot_witness }
    }

    /// Node indices on the hot path, with the witness entry name.
    pub fn hot_nodes(&self) -> impl Iterator<Item = (usize, &str)> + '_ {
        self.hot_witness.iter().enumerate().filter_map(|(i, w)| w.as_deref().map(|w| (i, w)))
    }
}

/// The temperature a `// lint: hot`/`cold` marker assigns to `def`: the
/// marker must sit on the definition's line or the line directly above.
/// `// lint: total` markers belong to the totality analysis and say
/// nothing about temperature, so the scan continues past them.
fn marker_temp(file: &SourceFile, def: &FnDef) -> Temp {
    for m in &file.lexed.markers {
        if m.line == def.item.line || m.line + 1 == def.item.line {
            match m.kind {
                MarkerKind::Hot => return Temp::Hot,
                MarkerKind::Cold => return Temp::Cold,
                MarkerKind::Total => continue,
            }
        }
    }
    Temp::Default
}

/// Method names that shadow ubiquitous std accessors: an unqualified
/// `x.len()` is overwhelmingly `[T]::len` / `Vec::len`, not a workspace
/// impl, and resolving it by name alone manufactures false call edges —
/// and, through the summaries, false transitive lock/alloc facts. Calls
/// to these names only resolve when path-qualified (`VecSink::len`).
const STD_SHADOWED_METHODS: [&str; 3] = ["len", "is_empty", "clone"];

/// All nodes a call with the given shape may land on (empty when the
/// callee is outside the workspace, e.g. `Vec::new` or `slice.iter`).
pub(crate) fn resolve(
    nodes: &[Node],
    files: &[SourceFile],
    caller: &Node,
    callee: &str,
    qualifier: Option<&str>,
    is_method: bool,
) -> Vec<usize> {
    let caller_type = files[caller.file].defs[caller.def].impl_type.as_deref();
    nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            let def = &files[n.file].defs[n.def];
            if def.item.name != callee {
                return false;
            }
            match qualifier {
                Some("Self") => def.impl_type.as_deref() == caller_type && caller_type.is_some(),
                Some(t) => def.impl_type.as_deref() == Some(t),
                None if is_method => def.item.has_self && !STD_SHADOWED_METHODS.contains(&callee),
                None => def.impl_type.is_none(),
            }
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(sources: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = sources.iter().map(|(l, s)| SourceFile::parse(l, s)).collect();
        let graph = CallGraph::build(&files);
        (files, graph)
    }

    fn hot_names(files: &[SourceFile], graph: &CallGraph) -> Vec<String> {
        let mut out: Vec<String> = graph
            .hot_nodes()
            .map(|(i, _)| {
                let n = &graph.nodes[i];
                files[n.file].defs[n.def].item.name.clone()
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn std_shadowed_method_names_need_a_qualifier_to_resolve() {
        // `buf.len()` must not resolve to `Sink::len` — the receiver is
        // almost certainly a std container — but the explicit
        // `Sink::len(&s)` form still does.
        let (files, graph) = graph_of(&[(
            "a.rs",
            "impl Sink { fn len(&self) -> usize { spawn_workers(); 0 } }\n\
             fn spawn_workers() {}\n\
             pub fn unqualified(buf: &[u8]) { buf.len(); }\n\
             pub fn qualified(s: &Sink) { Sink::len(s); }",
        )]);
        let node = |name: &str| {
            graph
                .nodes
                .iter()
                .position(|n| files[n.file].defs[n.def].item.name == name)
                .unwrap_or_else(|| panic!("no node {name}"))
        };
        let targets = |caller: &str, callee: &str, is_method: bool, qual: Option<&str>| {
            resolve(&graph.nodes, &files, &graph.nodes[node(caller)], callee, qual, is_method)
        };
        assert!(targets("unqualified", "len", true, None).is_empty());
        assert_eq!(targets("qualified", "len", false, Some("Sink")), vec![node("len")]);
    }

    #[test]
    fn reachability_crosses_files_and_impl_blocks() {
        let (files, graph) = graph_of(&[
            (
                "a.rs",
                "impl Conv2d { pub fn forward_ws(&mut self) { helper(); self.pack(); } \
                 fn pack(&self) { inner(); } }\nfn inner() {}",
            ),
            ("b.rs", "pub fn helper() { deep(); }\nfn deep() {}\nfn unrelated() {}"),
        ]);
        assert_eq!(
            hot_names(&files, &graph),
            vec!["deep", "forward_ws", "helper", "inner", "pack"]
        );
    }

    #[test]
    fn cold_marker_cuts_traversal_and_hot_marker_adds_entries() {
        let (files, graph) = graph_of(&[(
            "a.rs",
            "pub fn forward_ws() { setup(); }\n\
             // lint: cold\n\
             fn setup() { build(); }\n\
             fn build() {}\n\
             // lint: hot\n\
             fn custom_kernel() { tile(); }\n\
             fn tile() {}",
        )]);
        assert_eq!(hot_names(&files, &graph), vec!["custom_kernel", "forward_ws", "tile"]);
    }

    #[test]
    fn qualifier_resolution_separates_homonymous_methods() {
        // Both types define `step`; a `Sgd::step` path call must not drag
        // the controller's `step` into the hot set.
        let (files, graph) = graph_of(&[(
            "a.rs",
            "pub fn train_client_ws() { Sgd::step(); }\n\
             impl Sgd { fn step() { fused(); } }\n\
             impl Controller { fn step() { replan(); } }\n\
             fn fused() {}\nfn replan() {}",
        )]);
        let hot = hot_names(&files, &graph);
        assert!(hot.contains(&"fused".to_string()), "{hot:?}");
        assert!(!hot.contains(&"replan".to_string()), "{hot:?}");
        // One `step` node is hot (Sgd's), one is not.
        assert_eq!(hot.iter().filter(|n| *n == "step").count(), 1, "{hot:?}");
    }

    #[test]
    fn method_calls_overapproximate_across_same_name_methods() {
        let (files, graph) = graph_of(&[(
            "a.rs",
            "pub fn backward_ws(l: &mut L) { l.apply(); }\n\
             impl A { fn apply(&self) { a_work(); } }\n\
             impl B { fn apply(&self) { b_work(); } }\n\
             fn a_work() {}\nfn b_work() {}",
        )]);
        let hot = hot_names(&files, &graph);
        assert!(hot.contains(&"a_work".to_string()) && hot.contains(&"b_work".to_string()));
    }

    #[test]
    fn test_module_functions_never_join_the_hot_set() {
        let (files, graph) = graph_of(&[(
            "a.rs",
            "fn work() {}\n#[cfg(test)]\nmod tests {\n fn forward_ws() { work(); }\n}",
        )]);
        assert!(hot_names(&files, &graph).is_empty());
    }

    #[test]
    fn unknown_qualifiers_resolve_to_nothing() {
        let (files, graph) = graph_of(&[(
            "a.rs",
            "pub fn gemm() { let v = Vec::new(); }\nimpl W { fn new() { boom(); } }\nfn boom() {}",
        )]);
        let hot = hot_names(&files, &graph);
        assert_eq!(hot, vec!["gemm"], "Vec::new must not resolve to W::new");
    }

    #[test]
    fn self_calls_stay_within_the_callers_type() {
        let (files, graph) = graph_of(&[(
            "a.rs",
            "impl A { pub fn forward_ws(&self) { Self::helper(); } fn helper() { a(); } }\n\
             impl B { fn helper() { b(); } }\nfn a() {}\nfn b() {}",
        )]);
        let hot = hot_names(&files, &graph);
        assert!(hot.contains(&"a".to_string()), "{hot:?}");
        assert!(!hot.contains(&"b".to_string()), "{hot:?}");
    }
}
