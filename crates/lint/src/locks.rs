//! Lock-site extraction, lock-identity resolution, the workspace-wide
//! lock-order graph, and the four concurrency rules of
//! `subfed-lint analyze`.
//!
//! # Acquisitions and identities
//!
//! An *acquisition* is either a blocking lock method with an empty
//! argument list (`recv.lock()`, `.try_lock()`, `.read()`, `.write()`)
//! or a call to a `lock_`-prefixed helper (`lock_unpoisoned(&self.x)`,
//! `lock_pool(&self.inner)`) — the workspace's poison-consistent
//! wrappers. The body of a `lock_`-prefixed function is itself exempt:
//! the raw `m.lock()` inside `lock_unpoisoned` would otherwise give every
//! caller one shared, meaningless identity.
//!
//! Each acquisition is resolved to a **lock identity** — a stable name
//! for *which* mutex is taken, independent of the local binding:
//!
//! * `self.field.lock()` → `Type::field` (the enclosing impl type);
//! * a local (`lock_unpoisoned(shard)`) is chased backwards through its
//!   `let`/`for` binder to the underlying path (`for (i, shard) in
//!   self.shards.iter()…` → `Pool::shards`);
//! * `UPPER_CASE` names resolve to themselves (statics);
//! * anything else falls back to `fn::name`, which is unique enough to
//!   never *merge* two different locks (the analysis may split one lock
//!   into two identities — sound for cycle detection, which only ever
//!   errs toward missing an edge, never toward inventing a false cycle
//!   between genuinely different locks).
//!
//! # Held regions
//!
//! A guard bound by `let g = <acquisition>;` (optionally through the
//! `.unwrap()`/`.expect(…)` that `raw-lock-unwrap` flags) is live from
//! the acquisition to the end of the innermost enclosing block, or to an
//! explicit `drop(g)`. An unbound (temporary) guard is live to the end of
//! its statement. Both are conservative over-approximations of the
//! borrow checker's real drop points — fine for a hazard filter.
//!
//! # The four rules
//!
//! * [`RAW_LOCK_UNWRAP`] — a lock result meeting a bare
//!   `.unwrap()`/`.expect(…)`; route it through
//!   `subfed_metrics::sync::lock_unpoisoned` instead.
//! * [`ALLOC_UNDER_LOCK`] — an allocation shape (see
//!   [`crate::summaries::alloc_sites`]) directly or transitively inside a
//!   held region.
//! * [`GUARD_ACROSS_SPAWN`] — a guard held across `spawn`/
//!   `thread::scope`, across a synchronous wait (`join()`/`recv()`), or
//!   across a loop that acquires a *different* lock per iteration.
//! * [`LOCK_ORDER`] — a cycle in the derived lock-order graph
//!   ([`LockGraph`]): edges run from a held lock to every lock acquired
//!   (directly or through calls) inside its region; same-identity
//!   re-acquisition is *not* an edge, so the shard-index-order idiom
//!   (locking `shards[i]` in ascending `i`) stays legal.

use crate::callgraph::{resolve, CallGraph, SourceFile};
use crate::lexer::Token;
use crate::parser::{call_sites, loop_bodies, CallSite, FnDef};
use crate::rules::{ident, punct, Finding};
use crate::summaries::{alloc_sites, spawn_shape, sync_block_shape, Summaries};
use std::collections::BTreeSet;

/// Identifier of the bare-unwrap-on-lock-result rule.
pub const RAW_LOCK_UNWRAP: &str = "raw-lock-unwrap";
/// Identifier of the lock-order-cycle rule.
pub const LOCK_ORDER: &str = "lock-order";
/// Identifier of the allocation-while-locked rule.
pub const ALLOC_UNDER_LOCK: &str = "alloc-under-lock";
/// Identifier of the guard-held-across-spawn/wait/loop rule.
pub const GUARD_ACROSS_SPAWN: &str = "guard-across-spawn";

/// The lock methods that produce a guard when called with no arguments.
const GUARD_METHODS: [&str; 4] = ["lock", "try_lock", "read", "write"];

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Token index of the acquiring identifier (`lock`, `lock_unpoisoned`, …).
    pub idx: usize,
    /// 1-based source line of the acquisition.
    pub line: usize,
    /// Resolved lock identity (see the module docs).
    pub id: String,
    /// Rendered shape (`` `.lock()` ``, `` `lock_unpoisoned(…)` ``).
    pub how: String,
    /// Token span `(start, end)` the guard is conservatively live over.
    pub region: (usize, usize),
}

/// Extracts every acquisition in `def`'s body, with resolved identities
/// and held regions. Bodies of `lock_`-prefixed helpers are exempt (see
/// the module docs).
pub fn fn_acquisitions(file: &SourceFile, def: &FnDef) -> Vec<Acquisition> {
    if def.item.name.starts_with("lock_") {
        return Vec::new();
    }
    let Some((open, close)) = def.item.body else { return Vec::new() };
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    for call in call_sites(toks, open, close) {
        let acq = if call.is_method
            && GUARD_METHODS.contains(&call.callee.as_str())
            && crate::summaries::empty_args(toks, call.idx)
        {
            let recv_end = call.idx.saturating_sub(2);
            let segs = path_before(toks, recv_end, open);
            Some((segs, format!("`.{}()`", call.callee)))
        } else if !call.is_method && call.callee.starts_with("lock_") {
            let segs = path_after(toks, call.idx + 2, close);
            Some((segs, format!("`{}(…)`", call.callee)))
        } else {
            None
        };
        let Some((segs, how)) = acq else { continue };
        let id = identity(file, def, segs, call.idx, 2);
        let region = guard_region(toks, &call, open, close);
        out.push(Acquisition { idx: call.idx, line: call.line, id, how, region });
    }
    out
}

/// Resolves a receiver/argument path to a lock identity.
fn identity(file: &SourceFile, def: &FnDef, segs: Vec<String>, at: usize, budget: u8) -> String {
    let fallback = |tail: &str| format!("{}::{tail}", def.qualified());
    match segs.split_first() {
        None => fallback("<locked-temporary>"),
        Some((head, rest)) if head == "self" => {
            if rest.is_empty() {
                return fallback("self");
            }
            let field = rest.join(".");
            match &def.impl_type {
                Some(t) => format!("{t}::{field}"),
                None => fallback(&field),
            }
        }
        Some((head, [])) => {
            // A bare local: chase its `let`/`for` binder once or twice.
            if budget > 0 {
                if let Some(src) = local_source(file, def, head, at) {
                    if !src.is_empty() && src != segs {
                        return identity(file, def, src, at, budget - 1);
                    }
                }
            }
            if head.chars().all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit()) {
                return head.clone(); // a static — one identity workspace-wide
            }
            fallback(head)
        }
        Some((head, _)) => {
            if head.chars().next().map(|c| c.is_ascii_uppercase()).unwrap_or(false) {
                segs.join("::") // Type::STATIC-style path
            } else {
                fallback(&segs.join("."))
            }
        }
    }
}

/// The expression a local `name` was bound from: scans backwards from
/// `at` for the nearest `let … name … = expr` or `for … name … in expr`
/// and returns `expr`'s leading path.
fn local_source(file: &SourceFile, def: &FnDef, name: &str, at: usize) -> Option<Vec<String>> {
    let toks = &file.lexed.tokens;
    let (open, close) = def.item.body?;
    let mut k = at.min(close);
    while k > open {
        k -= 1;
        match ident(&toks[k]) {
            Some("let") => {
                // Pattern runs to the `=` at depth 0.
                let mut j = k + 1;
                let mut depth = 0i32;
                let mut bound = false;
                while j < at {
                    match punct(&toks[j]) {
                        Some('(') | Some('[') => depth += 1,
                        Some(')') | Some(']') => depth -= 1,
                        Some('=') if depth == 0 => break,
                        Some(';') if depth == 0 => break,
                        _ => bound |= ident(&toks[j]) == Some(name),
                    }
                    j += 1;
                }
                if bound && punct(&toks[j]) == Some('=') {
                    return Some(path_after(toks, j + 1, close));
                }
            }
            Some("for") => {
                // Pattern runs to the `in` at depth 0; expr follows it.
                let mut j = k + 1;
                let mut depth = 0i32;
                let mut bound = false;
                while j < at {
                    match punct(&toks[j]) {
                        Some('(') | Some('[') => depth += 1,
                        Some(')') | Some(']') => depth -= 1,
                        Some('{') if depth == 0 => break,
                        _ => {
                            if depth == 0 && ident(&toks[j]) == Some("in") {
                                break;
                            }
                            bound |= ident(&toks[j]) == Some(name);
                        }
                    }
                    j += 1;
                }
                if bound && ident(&toks[j]) == Some("in") {
                    return Some(path_after(toks, j + 1, close));
                }
            }
            _ => {}
        }
    }
    None
}

/// The `a.b`/`a::b` ident path ending at token `end`, walked backwards
/// over separators and `[…]` index groups.
fn path_before(toks: &[Token], end: usize, lo: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut k = end;
    loop {
        // Skip trailing index groups: `shards[i].lock()`.
        while punct(toks.get(k).unwrap_or(&toks[lo])) == Some(']') && k > lo {
            let mut depth = 0i32;
            let mut j = k;
            loop {
                match punct(&toks[j]) {
                    Some(']') => depth += 1,
                    Some('[') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == lo {
                    break;
                }
                j -= 1;
            }
            if j <= lo {
                segs.reverse();
                return segs;
            }
            k = j - 1;
        }
        let Some(name) = toks.get(k).and_then(ident) else { break };
        segs.push(name.to_string());
        if k >= 2 && punct(&toks[k - 1]) == Some('.') {
            k -= 2;
        } else if k >= 3 && punct(&toks[k - 1]) == Some(':') && punct(&toks[k - 2]) == Some(':') {
            k -= 3;
        } else {
            break;
        }
        if k < lo {
            break;
        }
    }
    segs.reverse();
    segs
}

/// The leading ident path of the expression starting at `start`
/// (`&self.shards.iter()` → `["self", "shards"]`): sigils are skipped,
/// and a segment directly followed by `(` is a call, which ends the path.
fn path_after(toks: &[Token], start: usize, hi: usize) -> Vec<String> {
    let mut k = start;
    while k <= hi
        && (matches!(punct_at(toks, k), Some('&') | Some('*')) || ident_at(toks, k) == Some("mut"))
    {
        k += 1;
    }
    let mut segs = Vec::new();
    while k <= hi {
        let Some(name) = ident_at(toks, k) else { break };
        if punct_at(toks, k + 1) == Some('(') {
            break; // a call segment: `iter()` is not part of the lock path
        }
        segs.push(name.to_string());
        if punct_at(toks, k + 1) == Some('.') {
            k += 2;
        } else if punct_at(toks, k + 1) == Some(':') && punct_at(toks, k + 2) == Some(':') {
            k += 3;
        } else if punct_at(toks, k + 1) == Some('[') {
            // Index group, then optionally more path: `shards[i].lock`.
            let mut depth = 0i32;
            let mut j = k + 1;
            while j <= hi {
                match punct_at(toks, j) {
                    Some('[') => depth += 1,
                    Some(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if punct_at(toks, j + 1) == Some('.') {
                k = j + 2;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    segs
}

/// The token span a guard from the acquisition at `call` is live over.
fn guard_region(toks: &[Token], call: &CallSite, open: usize, close: usize) -> (usize, usize) {
    // The argument list of the acquiring call.
    let args_open = call.idx + 1;
    let mut after = matching_paren(toks, args_open) + 1;
    // `.unwrap()` / `.expect(…)` chained on the lock result still yields
    // the guard (and is what `raw-lock-unwrap` flags).
    if punct_at(toks, after) == Some('.')
        && matches!(ident_at(toks, after + 1), Some("unwrap") | Some("expect"))
        && punct_at(toks, after + 2) == Some('(')
    {
        after = matching_paren(toks, after + 2) + 1;
    }
    let binding = binding_of(toks, open, call.idx);
    let bound = binding.is_some() && punct_at(toks, after) == Some(';');
    if !bound {
        // Temporary guard: live to the end of its statement.
        let mut depth = 0i32;
        let mut j = after;
        while j <= close {
            match punct_at(toks, j) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('}') => {
                    if depth == 0 {
                        return (call.idx, j);
                    }
                    depth -= 1;
                }
                Some(';') if depth == 0 => return (call.idx, j),
                _ => {}
            }
            j += 1;
        }
        return (call.idx, close);
    }
    // Bound guard: live to `drop(name)` or the end of the innermost
    // enclosing block.
    let block_close = enclosing_block_close(toks, open, close, call.idx);
    if let Some(name) = binding {
        let mut j = after;
        while j < block_close {
            if ident_at(toks, j) == Some("drop")
                && punct_at(toks, j + 1) == Some('(')
                && ident_at(toks, j + 2) == Some(name)
                && punct_at(toks, j + 3) == Some(')')
            {
                return (call.idx, j);
            }
            j += 1;
        }
    }
    (call.idx, block_close)
}

/// The `let [mut] NAME` binding opening the statement containing `at`,
/// when the statement is a simple binding (`_` does not count: it drops
/// the guard immediately).
fn binding_of(toks: &[Token], open: usize, at: usize) -> Option<&str> {
    let mut s = at;
    while s > open {
        if matches!(punct(&toks[s - 1]), Some(';') | Some('{') | Some('}')) {
            break;
        }
        s -= 1;
    }
    let mut k = s;
    while k < at {
        if ident(&toks[k]) == Some("let") {
            let mut n = k + 1;
            if ident_at(toks, n) == Some("mut") {
                n += 1;
            }
            return ident_at(toks, n).filter(|name| *name != "_");
        }
        k += 1;
    }
    None
}

/// The `}` closing the innermost block that contains token `idx`.
fn enclosing_block_close(toks: &[Token], open: usize, close: usize, idx: usize) -> usize {
    let mut stack = Vec::new();
    let last = close.min(toks.len().saturating_sub(1));
    for (j, t) in toks.iter().enumerate().take(last + 1).skip(open) {
        match punct(t) {
            Some('{') => stack.push(j),
            Some('}') => {
                if let Some(o) = stack.pop() {
                    if o <= idx && idx <= j {
                        // First close whose open precedes idx = innermost.
                        return j;
                    }
                }
            }
            _ => {}
        }
    }
    close
}

/// One directed edge of the lock-order graph: `from` is held while `to`
/// is acquired, at the witnessed site.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Index into [`LockGraph::nodes`] of the held lock.
    pub from: usize,
    /// Index into [`LockGraph::nodes`] of the lock acquired under it.
    pub to: usize,
    /// File label of the nested acquisition (or the call reaching it).
    pub file: String,
    /// 1-based line of that site.
    pub line: usize,
    /// Qualified name of the function holding `from` at the site.
    pub func: String,
    /// Call chain (qualified names) when the nested acquisition is
    /// transitive; empty for a direct nesting.
    pub via: Vec<String>,
}

/// The workspace lock-order graph: one node per lock identity, one edge
/// per observed held-while-acquiring pair. Cycles are potential
/// deadlocks.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Lock identities, in first-seen order.
    pub nodes: Vec<String>,
    /// All observed acquisition orderings.
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// Builds the graph over all scanned files: direct nestings from each
    /// function's own regions, transitive ones through the call summaries.
    pub fn build(files: &[SourceFile], graph: &CallGraph, summaries: &Summaries) -> LockGraph {
        let mut lg = LockGraph::default();
        for (ni, node) in graph.nodes.iter().enumerate() {
            if node.in_tests {
                continue;
            }
            let file = &files[node.file];
            let def = &file.defs[node.def];
            let toks = &file.lexed.tokens;
            let acqs = fn_acquisitions(file, def);
            for acq in &acqs {
                lg.node_id(&acq.id);
                let (lo, hi) = acq.region;
                for other in &acqs {
                    if other.idx > acq.idx && other.idx <= hi && other.id != acq.id {
                        let (from, to) = (lg.node_id(&acq.id), lg.node_id(&other.id));
                        lg.edges.push(LockEdge {
                            from,
                            to,
                            file: file.label.clone(),
                            line: other.line,
                            func: def.qualified(),
                            via: Vec::new(),
                        });
                    }
                }
                for call in call_sites(toks, lo, hi) {
                    if call.idx <= acq.idx || is_acquisition_call(toks, &call) {
                        continue;
                    }
                    for c in resolve_call(graph, files, ni, &call) {
                        for (id, fact) in &summaries.per_node[c].acquires {
                            if *id == acq.id {
                                continue;
                            }
                            let callee = {
                                let n = &graph.nodes[c];
                                files[n.file].defs[n.def].qualified()
                            };
                            let mut via = vec![callee];
                            via.extend(fact.via.iter().cloned());
                            let (from, to) = (lg.node_id(&acq.id), lg.node_id(id));
                            lg.edges.push(LockEdge {
                                from,
                                to,
                                file: file.label.clone(),
                                line: call.line,
                                func: def.qualified(),
                                via,
                            });
                        }
                    }
                }
            }
        }
        lg
    }

    fn node_id(&mut self, name: &str) -> usize {
        match self.nodes.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.nodes.push(name.to_string());
                self.nodes.len() - 1
            }
        }
    }

    /// Every elementary cycle found by DFS, deduplicated by node set;
    /// each cycle lists node indices in acquisition order.
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if !succ[e.from].contains(&e.to) {
                succ[e.from].push(e.to);
            }
        }
        let mut cycles: Vec<Vec<usize>> = Vec::new();
        let mut seen_sets: BTreeSet<Vec<usize>> = BTreeSet::new();
        let mut color = vec![0u8; n]; // 0 white, 1 on-stack, 2 done
        let mut path: Vec<usize> = Vec::new();

        fn dfs(
            v: usize,
            succ: &[Vec<usize>],
            color: &mut [u8],
            path: &mut Vec<usize>,
            cycles: &mut Vec<Vec<usize>>,
            seen: &mut BTreeSet<Vec<usize>>,
        ) {
            color[v] = 1;
            path.push(v);
            for &w in &succ[v] {
                if color[w] == 1 {
                    let start = path.iter().position(|&p| p == w).unwrap_or(0);
                    let cycle: Vec<usize> = path[start..].to_vec();
                    let mut key = cycle.clone();
                    key.sort_unstable();
                    if seen.insert(key) {
                        cycles.push(cycle);
                    }
                } else if color[w] == 0 {
                    dfs(w, succ, color, path, cycles, seen);
                }
            }
            path.pop();
            color[v] = 2;
        }

        for v in 0..n {
            if color[v] == 0 {
                dfs(v, &succ, &mut color, &mut path, &mut cycles, &mut seen_sets);
            }
        }
        cycles
    }

    /// The first recorded edge `from → to`, for witness rendering.
    fn edge(&self, from: usize, to: usize) -> Option<&LockEdge> {
        self.edges.iter().find(|e| e.from == from && e.to == to)
    }
}

/// Whether a call site is itself a lock acquisition (so region rules do
/// not double-report it as an ordinary call).
fn is_acquisition_call(toks: &[Token], call: &CallSite) -> bool {
    (call.is_method
        && GUARD_METHODS.contains(&call.callee.as_str())
        && crate::summaries::empty_args(toks, call.idx))
        || (!call.is_method && call.callee.starts_with("lock_"))
}

fn resolve_call(
    graph: &CallGraph,
    files: &[SourceFile],
    caller: usize,
    call: &CallSite,
) -> Vec<usize> {
    resolve(
        &graph.nodes,
        files,
        &graph.nodes[caller],
        &call.callee,
        call.qualifier.as_deref(),
        call.is_method,
    )
}

/// Runs all four concurrency rules over the parsed workspace.
/// Suppression is the caller's job (it needs the per-file directives).
pub fn lock_findings(
    files: &[SourceFile],
    graph: &CallGraph,
    summaries: &Summaries,
) -> Vec<Finding> {
    let mut out = Vec::new();

    for file in files {
        raw_lock_unwrap(file, &mut out);
    }

    let lg = LockGraph::build(files, graph, summaries);
    for cycle in lg.cycles() {
        let mut clauses = Vec::new();
        let mut site: Option<(String, usize)> = None;
        for (k, &u) in cycle.iter().enumerate() {
            let v = cycle[(k + 1) % cycle.len()];
            if let Some(e) = lg.edge(u, v) {
                if site.is_none() {
                    site = Some((e.file.clone(), e.line));
                }
                let via = if e.via.is_empty() {
                    String::new()
                } else {
                    format!(
                        " via {}",
                        e.via.iter().map(|f| format!("`{f}`")).collect::<Vec<_>>().join(" → ")
                    )
                };
                clauses.push(format!(
                    "`{}` → `{}` (in `{}`{via}, {}:{})",
                    lg.nodes[u], lg.nodes[v], e.func, e.file, e.line
                ));
            }
        }
        let (file, line) = site.unwrap_or_default();
        out.push(Finding {
            file,
            line,
            rule: LOCK_ORDER,
            message: format!(
                "lock-order cycle: {}; two threads interleaving these paths can \
                 deadlock — pick one global acquisition order",
                clauses.join(", ")
            ),
            suppressed: false,
        });
    }

    for (ni, node) in graph.nodes.iter().enumerate() {
        if node.in_tests {
            continue;
        }
        let file = &files[node.file];
        let def = &file.defs[node.def];
        region_rules(files, graph, summaries, ni, file, def, &mut out);
    }

    // Transitive findings can repeat per call site; keep one per
    // (rule, file, line, message).
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    out.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });
    out
}

/// The `alloc-under-lock` and `guard-across-spawn` checks for one
/// function's held regions.
fn region_rules(
    files: &[SourceFile],
    graph: &CallGraph,
    summaries: &Summaries,
    ni: usize,
    file: &SourceFile,
    def: &FnDef,
    out: &mut Vec<Finding>,
) {
    let toks = &file.lexed.tokens;
    let fn_name = def.qualified();
    let acqs = fn_acquisitions(file, def);
    for acq in &acqs {
        let (lo, hi) = acq.region;
        for site in alloc_sites(toks, lo, hi) {
            if site.idx <= acq.idx {
                continue;
            }
            out.push(Finding {
                file: file.label.clone(),
                line: site.line,
                rule: ALLOC_UNDER_LOCK,
                message: format!(
                    "{} allocates while `{}` is held in `{fn_name}`; shrink the \
                     critical section (allocate before locking) or justify with an allow",
                    site.what, acq.id
                ),
                suppressed: false,
            });
        }
        for call in call_sites(toks, lo, hi) {
            if call.idx <= acq.idx {
                continue;
            }
            if let Some(what) = spawn_shape(&call) {
                out.push(Finding {
                    file: file.label.clone(),
                    line: call.line,
                    rule: GUARD_ACROSS_SPAWN,
                    message: format!(
                        "guard on `{}` is held across {what} in `{fn_name}`; spawned \
                         workers contend on (or deadlock against) the held lock — \
                         scope the guard before fanning out",
                        acq.id
                    ),
                    suppressed: false,
                });
            }
            if let Some(what) = sync_block_shape(toks, &call) {
                out.push(Finding {
                    file: file.label.clone(),
                    line: call.line,
                    rule: GUARD_ACROSS_SPAWN,
                    message: format!(
                        "guard on `{}` is held across {what} in `{fn_name}`; blocking \
                         on another thread while holding a lock invites deadlock — \
                         release the guard first",
                        acq.id
                    ),
                    suppressed: false,
                });
            }
            if is_acquisition_call(toks, &call) {
                continue;
            }
            for c in resolve_call(graph, files, ni, &call) {
                let s = &summaries.per_node[c];
                let callee = {
                    let n = &graph.nodes[c];
                    files[n.file].defs[n.def].qualified()
                };
                if let Some(fact) = &s.allocates {
                    out.push(Finding {
                        file: file.label.clone(),
                        line: call.line,
                        rule: ALLOC_UNDER_LOCK,
                        message: format!(
                            "call to `{callee}` allocates ({}) while `{}` is held in \
                             `{fn_name}`; move the call outside the critical section",
                            fact.render(),
                            acq.id
                        ),
                        suppressed: false,
                    });
                }
                if let Some(fact) = &s.spawns {
                    out.push(Finding {
                        file: file.label.clone(),
                        line: call.line,
                        rule: GUARD_ACROSS_SPAWN,
                        message: format!(
                            "guard on `{}` is held across `{callee}`, which spawns \
                             ({}) in `{fn_name}`; scope the guard before fanning out",
                            acq.id,
                            fact.render(),
                        ),
                        suppressed: false,
                    });
                }
                if let Some(fact) = &s.blocks_sync {
                    out.push(Finding {
                        file: file.label.clone(),
                        line: call.line,
                        rule: GUARD_ACROSS_SPAWN,
                        message: format!(
                            "guard on `{}` is held across `{callee}`, which blocks \
                             ({}) in `{fn_name}`; release the guard first",
                            acq.id,
                            fact.render(),
                        ),
                        suppressed: false,
                    });
                }
            }
        }
        // A loop inside the region that takes a *different* lock per
        // iteration: the held guard serialises every worker behind it.
        for (llo, lhi) in loop_bodies(toks, lo, hi) {
            if llo <= acq.idx {
                continue;
            }
            let mut inner: Vec<(String, usize)> = acqs
                .iter()
                .filter(|a| a.idx > llo && a.idx < lhi && a.id != acq.id)
                .map(|a| (a.id.clone(), a.line))
                .collect();
            for call in call_sites(toks, llo, lhi) {
                if is_acquisition_call(toks, &call) {
                    continue;
                }
                for c in resolve_call(graph, files, ni, &call) {
                    for id in summaries.per_node[c].acquires.keys() {
                        if *id != acq.id {
                            inner.push((id.clone(), call.line));
                        }
                    }
                }
            }
            inner.sort();
            inner.dedup();
            for (id, line) in inner {
                out.push(Finding {
                    file: file.label.clone(),
                    line,
                    rule: GUARD_ACROSS_SPAWN,
                    message: format!(
                        "guard on `{}` is held across a loop acquiring `{id}` in \
                         `{fn_name}`; per-iteration locks under an outer guard \
                         serialise workers and risk deadlock — release `{}` first",
                        acq.id, acq.id
                    ),
                    suppressed: false,
                });
            }
        }
    }
}

/// Token-level scan for `.lock().unwrap()`-shaped poison bombs.
fn raw_lock_unwrap(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for i in 1..toks.len() {
        if file.in_tests(i) {
            continue;
        }
        let Some(name) = ident(&toks[i]) else { continue };
        if !(GUARD_METHODS.contains(&name) || name == "into_inner") {
            continue;
        }
        if punct_at(toks, i - 1) != Some('.')
            || punct_at(toks, i + 1) != Some('(')
            || punct_at(toks, i + 2) != Some(')')
            || punct_at(toks, i + 3) != Some('.')
        {
            continue;
        }
        let Some(u) = ident_at(toks, i + 4) else { continue };
        if !matches!(u, "unwrap" | "expect") || punct_at(toks, i + 5) != Some('(') {
            continue;
        }
        out.push(Finding {
            file: file.label.clone(),
            line: toks[i + 4].line,
            rule: RAW_LOCK_UNWRAP,
            message: format!(
                "`.{name}().{u}(…)` panics if the lock is poisoned; route the result \
                 through `subfed_metrics::sync::lock_unpoisoned`/`into_inner_unpoisoned` \
                 so the workspace poisoning policy stays in one place"
            ),
            suppressed: false,
        });
    }
}

fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match punct(t) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    toks.get(i).and_then(ident)
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    toks.get(i).and_then(punct)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse("fixture.rs", src)];
        let graph = CallGraph::build(&files);
        let summaries = Summaries::build(&files, &graph);
        lock_findings(&files, &graph, &summaries)
    }

    fn rules_of(fs: &[Finding]) -> Vec<&'static str> {
        fs.iter().map(|f| f.rule).collect()
    }

    fn acquisitions(src: &str) -> Vec<Acquisition> {
        let file = SourceFile::parse("fixture.rs", src);
        file.defs.iter().flat_map(|d| fn_acquisitions(&file, d)).collect()
    }

    #[test]
    fn identities_resolve_fields_locals_statics_and_params() {
        let src = "impl Acc {\n\
                   fn fold(&self) {\n\
                   for (i, shard) in self.shards.iter().enumerate() {\n\
                   let mut g = lock_unpoisoned(shard);\n\
                   }\n\
                   let d = self.direct.lock();\n\
                   let s = REGISTRY.lock();\n\
                   }\n\
                   }\n\
                   fn free(m: &Mutex<u32>) { let g = m.lock(); }";
        let ids: Vec<String> = acquisitions(src).into_iter().map(|a| a.id).collect();
        assert_eq!(ids, vec!["Acc::shards", "Acc::direct", "REGISTRY", "free::m"], "{ids:?}");
    }

    #[test]
    fn helper_bodies_are_exempt_but_helper_calls_are_acquisitions() {
        let src = "fn lock_pool(m: &Mutex<V>) -> G { m.lock() }\n\
                   impl P { fn idle(&self) -> usize { lock_pool(&self.inner).len() } }";
        let acqs = acquisitions(src);
        assert_eq!(acqs.len(), 1, "{acqs:?}");
        assert_eq!(acqs[0].id, "P::inner");
        assert_eq!(acqs[0].how, "`lock_pool(…)`");
    }

    #[test]
    fn bound_guard_region_runs_to_block_end_or_drop() {
        let src = "fn f(m: &Mutex<V>) {\n\
                   let g = m.lock();\n\
                   step();\n\
                   drop(g);\n\
                   tail();\n\
                   }";
        let file = SourceFile::parse("fixture.rs", src);
        let acqs = fn_acquisitions(&file, &file.defs[0]);
        let toks = &file.lexed.tokens;
        let drop_idx = toks.iter().position(|t| ident(t) == Some("drop")).unwrap();
        assert_eq!(acqs[0].region.1, drop_idx, "region must end at drop(g)");
    }

    #[test]
    fn raw_lock_unwrap_flags_bare_unwrap_and_expect_only() {
        let fs = run("fn f(m: &Mutex<V>) {\n\
                      let a = m.lock().unwrap();\n\
                      let b = m.lock().expect(\"poisoned\");\n\
                      let c = lock_unpoisoned(m);\n\
                      let d = m.into_inner().unwrap_or_else(e);\n\
                      }");
        assert_eq!(rules_of(&fs), vec![RAW_LOCK_UNWRAP, RAW_LOCK_UNWRAP], "{fs:?}");
        assert!(fs[0].message.contains("lock_unpoisoned"));
    }

    #[test]
    fn alloc_under_lock_direct_and_transitive() {
        let fs = run("impl Pool {\n\
                      fn refill(&self) {\n\
                      let mut g = lock_unpoisoned(&self.slots);\n\
                      g.extend(rebuild());\n\
                      let v = Vec::new();\n\
                      }\n\
                      }\n\
                      fn rebuild() -> V { let mut v = vec![0; 4]; v }");
        let allocs: Vec<&Finding> = fs.iter().filter(|f| f.rule == ALLOC_UNDER_LOCK).collect();
        assert_eq!(allocs.len(), 2, "{fs:?}");
        assert!(allocs.iter().any(|f| f.message.contains("`Vec::new()`")));
        let transitive = allocs
            .iter()
            .find(|f| f.message.contains("call to `rebuild`"))
            .expect("transitive finding");
        assert!(transitive.message.contains("`Pool::slots`"), "{}", transitive.message);
        assert!(transitive.message.contains("`vec![…]`"), "{}", transitive.message);
    }

    #[test]
    fn allocating_before_the_lock_is_clean() {
        let fs = run("impl Pool { fn refill(&self) {\n\
                      let fresh = vec![0; 4];\n\
                      lock_unpoisoned(&self.slots).extend(fresh);\n\
                      } }");
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn guard_across_spawn_direct_and_loop_variant() {
        let fs = run("impl Fan {\n\
                      fn broadcast(&self) {\n\
                      let g = lock_unpoisoned(&self.state);\n\
                      thread::scope(|s| { s.spawn(|_| {}); });\n\
                      }\n\
                      fn drain(&self) {\n\
                      let g = lock_unpoisoned(&self.state);\n\
                      for j in 0..n {\n\
                      let h = lock_unpoisoned(&self.queue);\n\
                      }\n\
                      }\n\
                      }");
        let spawns: Vec<&Finding> = fs.iter().filter(|f| f.rule == GUARD_ACROSS_SPAWN).collect();
        assert!(spawns.iter().any(|f| f.message.contains("`thread::scope(…)`")), "{fs:?}");
        assert!(spawns.iter().any(|f| f.message.contains("loop acquiring `Fan::queue`")), "{fs:?}");
    }

    #[test]
    fn lock_order_cycle_is_reported_with_both_edges() {
        let fs = run("impl Pair {\n\
                      fn fwd(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n\
                      fn bwd(&self) { let b = self.b.lock(); let a = self.a.lock(); }\n\
                      }");
        let cycles: Vec<&Finding> = fs.iter().filter(|f| f.rule == LOCK_ORDER).collect();
        assert_eq!(cycles.len(), 1, "{fs:?}");
        let msg = &cycles[0].message;
        assert!(
            msg.contains("`Pair::a` → `Pair::b`") && msg.contains("`Pair::b` → `Pair::a`"),
            "{msg}"
        );
        assert!(msg.contains("`Pair::fwd`") && msg.contains("`Pair::bwd`"), "{msg}");
    }

    #[test]
    fn consistent_order_and_shard_iteration_are_acyclic() {
        let src = "impl Acc {\n\
                   fn fold(&self) {\n\
                   for (i, shard) in self.shards.iter().enumerate() {\n\
                   let mut g = lock_unpoisoned(shard);\n\
                   g.len();\n\
                   }\n\
                   }\n\
                   fn both(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n\
                   fn also(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n\
                   }";
        let files = vec![SourceFile::parse("fixture.rs", src)];
        let graph = CallGraph::build(&files);
        let summaries = Summaries::build(&files, &graph);
        let lg = LockGraph::build(&files, &graph, &summaries);
        assert!(lg.nodes.iter().any(|n| n == "Acc::shards"), "{:?}", lg.nodes);
        assert!(lg.cycles().is_empty(), "{:?}", lg.edges);
        assert!(run(src).iter().all(|f| f.rule != LOCK_ORDER));
    }

    #[test]
    fn transitive_lock_order_cycle_through_a_call() {
        let fs = run("impl Pair {\n\
                      fn fwd(&self) { let a = self.a.lock(); self.take_b(); }\n\
                      fn take_b(&self) { let b = self.b.lock(); }\n\
                      fn bwd(&self) { let b = self.b.lock(); let a = self.a.lock(); }\n\
                      }");
        let cycles: Vec<&Finding> = fs.iter().filter(|f| f.rule == LOCK_ORDER).collect();
        assert_eq!(cycles.len(), 1, "{fs:?}");
        assert!(cycles[0].message.contains("via `Pair::take_b`"), "{}", cycles[0].message);
    }
}
