//! Trace conformance verifier: replays a JSONL trace (as written by
//! `--trace` / [`subfed_metrics::trace::JsonlSink`]) against the
//! executable protocol spec in [`crate::spec`].
//!
//! The verifier is streaming-friendly but *order-aware*: JSONL lines are
//! written in arrival order, which under worker threads is not emission
//! order. Every record carries a monotone `seq` stamped at emission, so
//! when all records have one the verifier re-sorts by `seq` (stable, so
//! legacy seq-less traces replay in file order) before replaying. It also
//! checks the `seq` stream itself: duplicates or holes mean the trace was
//! truncated or stitched together from different runs.
//!
//! Exit-code contract (see `subfed-lint conform`): 0 clean, 1 protocol
//! violations, 2 unreadable input.

use std::io::BufRead;
use subfed_metrics::trace::{TraceEvent, TraceReader};

use crate::spec::{ProtocolSpec, Violation};

/// Outcome of replaying one trace.
#[derive(Debug, Default)]
pub struct ConformReport {
    /// Protocol violations, in replay order.
    pub violations: Vec<Violation>,
    /// Lines that could not be parsed as trace records (`line N: why`).
    pub parse_errors: Vec<String>,
    /// Number of events replayed.
    pub events: usize,
    /// Number of rounds closed by a `round_end`.
    pub rounds: usize,
}

impl ConformReport {
    /// `true` when the trace parsed fully and satisfied every predicate.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.parse_errors.is_empty()
    }

    /// Process exit code for this report: parse errors dominate (the
    /// verdict on an unreadable trace is "unreadable", not "clean").
    pub fn exit_code(&self) -> u8 {
        if !self.parse_errors.is_empty() {
            2
        } else if !self.violations.is_empty() {
            1
        } else {
            0
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "conform: {} events, {} rounds, {} violations, {} parse errors\n",
            self.events,
            self.rounds,
            self.violations.len(),
            self.parse_errors.len()
        )
    }
}

/// Parses a JSONL trace into emission-ordered `(line, event)` records.
/// Parse and ordering problems land in `report.parse_errors`, prefixed
/// with `label` (empty for single-trace replays).
fn ordered_records<R: BufRead>(
    reader: R,
    label: &str,
    report: &mut ConformReport,
) -> Vec<(usize, TraceEvent)> {
    let mut records: Vec<(usize, Option<u64>, TraceEvent)> = Vec::new();
    for item in TraceReader::new(reader) {
        match item {
            Ok((line, tl)) => records.push((line, tl.seq, tl.event)),
            Err(e) => report.parse_errors.push(format!("{label}{e}")),
        }
    }

    // Establish the replay order: emission (`seq`) order when the whole
    // trace is stamped, file order otherwise (a mixed trace is two runs
    // concatenated — flag it rather than guessing an interleaving).
    let stamped = records.iter().filter(|(_, seq, _)| seq.is_some()).count();
    if stamped == records.len() {
        records.sort_by_key(|(_, seq, _)| seq.unwrap_or(u64::MAX));
        // Resynchronise `want` after each gap so one missing record
        // reports once, not once per record that follows it.
        let mut want = 0u64;
        for (line, seq, _) in &records {
            match seq {
                Some(s) if *s == want => want += 1,
                Some(s) if *s < want => report.parse_errors.push(format!(
                    "{label}line {line}: duplicate seq {s} — trace mixes records from \
                     different runs"
                )),
                Some(s) => {
                    report.parse_errors.push(format!(
                        "{label}line {line}: seq jumps to {s} where {want} was expected — \
                         records are missing from the trace"
                    ));
                    want = s + 1;
                }
                None => unreachable!("all records stamped"),
            }
        }
    } else if stamped > 0 {
        report.parse_errors.push(format!(
            "{label}{stamped} of {} records carry a seq field — a partially stamped trace \
             cannot be ordered; was it concatenated from different runs?",
            records.len()
        ));
    }
    records.into_iter().map(|(line, _, event)| (line, event)).collect()
}

/// Replays a JSONL trace from `reader` against the protocol spec.
pub fn verify_reader<R: BufRead>(reader: R) -> ConformReport {
    let mut report = ConformReport::default();
    let records = ordered_records(reader, "", &mut report);
    let mut spec = ProtocolSpec::new();
    for (line, event) in &records {
        report.violations.extend(spec.observe(event, Some(*line)));
    }
    report.violations.extend(spec.finish());
    report.events = spec.events_seen;
    report.rounds = spec.rounds_seen;
    report
}

/// Replays two JSONL traces of the *same configuration* (same seed and
/// data, any `--workers` setting) and requires them to be
/// replay-identical: each must individually conform to the protocol
/// spec, and [`crate::spec::replay_identity`] must find their canonical
/// streams and per-round model hashes bit-for-bit equal.
///
/// This is the CI replay-identity gate: run the federation twice at
/// different worker counts, then
/// `subfed-lint conform run-a.jsonl run-b.jsonl` exits 0 only when the
/// two runs are the same run.
pub fn verify_replay_pair<R1: BufRead, R2: BufRead>(a: R1, b: R2) -> ConformReport {
    let mut report = ConformReport::default();
    let ra = ordered_records(a, "run A: ", &mut report);
    let rb = ordered_records(b, "run B: ", &mut report);
    let mut replay = |records: &[(usize, TraceEvent)]| {
        let mut spec = ProtocolSpec::new();
        for (line, event) in records {
            report.violations.extend(spec.observe(event, Some(*line)));
        }
        report.violations.extend(spec.finish());
        report.events += spec.events_seen;
        (spec.rounds_seen, records.iter().map(|(_, e)| e.clone()).collect::<Vec<_>>())
    };
    let (rounds_a, events_a) = replay(&ra);
    let (_, events_b) = replay(&rb);
    report.rounds = rounds_a;
    report.violations.extend(crate::spec::replay_identity(&events_a, &events_b));
    report
}

/// Replays in-memory events (already in emission order) — the test- and
/// library-facing entry point.
pub fn verify_events(events: &[TraceEvent]) -> ConformReport {
    let mut report = ConformReport::default();
    let mut spec = ProtocolSpec::new();
    for event in events {
        report.violations.extend(spec.observe(event, None));
    }
    report.violations.extend(spec.finish());
    report.events = spec.events_seen;
    report.rounds = spec.rounds_seen;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn replay(text: &str) -> ConformReport {
        verify_reader(Cursor::new(text.as_bytes()))
    }

    #[test]
    fn empty_input_is_clean() {
        let r = replay("");
        assert!(r.is_clean());
        assert_eq!(r.exit_code(), 0);
        assert_eq!(r.events, 0);
    }

    #[test]
    fn garbage_line_is_a_parse_error_with_line_number() {
        let r = replay("not json\n");
        assert_eq!(r.exit_code(), 2);
        assert!(r.parse_errors[0].starts_with("line 1:"), "{:?}", r.parse_errors);
    }

    #[test]
    fn out_of_file_order_records_are_replayed_in_seq_order() {
        // Upload written to the file before the decode it must follow —
        // exactly what a worker thread's buffering can do. seq restores
        // emission order, so this minimal fragment only trips the
        // truncated-trace check (no round_end), not phase-order.
        let trace = "\
{\"ev\":\"round_start\",\"seq\":0,\"round\":1,\"sampled\":[0],\"survivors\":[0]}
{\"ev\":\"train\",\"seq\":1,\"round\":1,\"client\":0,\"us\":5,\"val_acc\":0.5,\"train_loss\":1.0}
{\"ev\":\"download\",\"seq\":2,\"round\":1,\"client\":0,\"bytes\":400}
{\"ev\":\"prune\",\"seq\":3,\"round\":1,\"client\":0,\"us\":5}
{\"ev\":\"prune_gate\",\"seq\":4,\"round\":1,\"client\":0,\"track\":\"un\",\"fired\":false,\"reason\":\"mask-stable\",\"val_acc\":0.5,\"mask_distance\":0.0,\"pruned_fraction\":0.0}
{\"ev\":\"upload\",\"seq\":7,\"round\":1,\"client\":0,\"bytes\":400}
{\"ev\":\"encode\",\"seq\":5,\"round\":1,\"client\":0,\"us\":5,\"bytes\":421,\"kept\":100}
{\"ev\":\"decode\",\"seq\":6,\"round\":1,\"client\":0,\"us\":5,\"bytes\":421}
";
        let r = replay(trace);
        assert!(
            !r.violations.iter().any(|v| v.rule == "phase-order"),
            "seq order was not honoured: {:?}",
            r.violations
        );
        assert!(r.violations.iter().any(|v| v.rule == "truncated-trace"));
    }

    #[test]
    fn duplicate_seq_is_a_parse_error() {
        let trace = "\
{\"ev\":\"round_start\",\"seq\":0,\"round\":1,\"sampled\":[],\"survivors\":[]}
{\"ev\":\"round_end\",\"seq\":0,\"round\":1,\"us\":5,\"cum_bytes\":0}
";
        let r = replay(trace);
        assert_eq!(r.exit_code(), 2);
        assert!(r.parse_errors.iter().any(|e| e.contains("duplicate seq")), "{:?}", r.parse_errors);
    }

    #[test]
    fn seq_hole_is_a_parse_error() {
        let trace = "\
{\"ev\":\"round_start\",\"seq\":0,\"round\":1,\"sampled\":[],\"survivors\":[]}
{\"ev\":\"round_end\",\"seq\":5,\"round\":1,\"us\":5,\"cum_bytes\":0}
";
        let r = replay(trace);
        assert_eq!(r.exit_code(), 2);
        assert!(r.parse_errors.iter().any(|e| e.contains("missing")), "{:?}", r.parse_errors);
    }

    #[test]
    fn partially_stamped_trace_is_a_parse_error() {
        let trace = "\
{\"ev\":\"round_start\",\"seq\":0,\"round\":1,\"sampled\":[],\"survivors\":[]}
{\"ev\":\"round_end\",\"round\":1,\"us\":5,\"cum_bytes\":0}
";
        let r = replay(trace);
        assert_eq!(r.exit_code(), 2);
        assert!(
            r.parse_errors.iter().any(|e| e.contains("partially stamped")),
            "{:?}",
            r.parse_errors
        );
    }

    #[test]
    fn seqless_trace_replays_in_file_order() {
        let trace = "\
{\"ev\":\"round_start\",\"round\":1,\"sampled\":[],\"survivors\":[]}
{\"ev\":\"round_end\",\"round\":1,\"us\":5,\"cum_bytes\":0}
";
        let r = replay(trace);
        assert!(r.is_clean(), "{:?}", (r.violations, r.parse_errors));
        assert_eq!(r.rounds, 1);
    }

    fn replay_pair(a: &str, b: &str) -> ConformReport {
        verify_replay_pair(Cursor::new(a.as_bytes()), Cursor::new(b.as_bytes()))
    }

    #[test]
    fn replay_pair_of_identical_runs_is_clean() {
        let run = "\
{\"ev\":\"round_start\",\"round\":1,\"sampled\":[],\"survivors\":[]}
{\"ev\":\"round_end\",\"round\":1,\"us\":5,\"cum_bytes\":0,\"model_hash\":\"00000000deadbeef\"}
";
        // Different wall-times are scheduling noise, not divergence.
        let other = run.replace("\"us\":5", "\"us\":99");
        let r = replay_pair(run, &other);
        assert!(r.is_clean(), "{:?}", (r.violations, r.parse_errors));
        assert_eq!(r.rounds, 1);
        assert_eq!(r.events, 4);
    }

    #[test]
    fn replay_pair_with_diverging_hashes_fails_the_gate() {
        let a = "\
{\"ev\":\"round_start\",\"round\":1,\"sampled\":[],\"survivors\":[]}
{\"ev\":\"round_end\",\"round\":1,\"us\":5,\"cum_bytes\":0,\"model_hash\":\"00000000deadbeef\"}
";
        let b = a.replace("deadbeef", "deadbee0");
        let r = replay_pair(a, &b);
        assert_eq!(r.exit_code(), 1);
        assert!(
            r.violations
                .iter()
                .any(|v| v.rule == "replay-identity" && v.message.contains("model_hash diverges")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn replay_pair_parse_errors_name_the_run() {
        let good = "{\"ev\":\"round_start\",\"round\":1,\"sampled\":[],\"survivors\":[]}\n\
                    {\"ev\":\"round_end\",\"round\":1,\"us\":5,\"cum_bytes\":0}\n";
        let r = replay_pair(good, "not json\n");
        assert_eq!(r.exit_code(), 2);
        assert!(
            r.parse_errors.iter().any(|e| e.starts_with("run B: line 1:")),
            "{:?}",
            r.parse_errors
        );
    }

    #[test]
    fn violations_carry_the_source_line() {
        let trace = "\
{\"ev\":\"round_start\",\"seq\":0,\"round\":1,\"sampled\":[],\"survivors\":[]}
{\"ev\":\"round_start\",\"seq\":1,\"round\":1,\"sampled\":[],\"survivors\":[]}
{\"ev\":\"round_end\",\"seq\":2,\"round\":1,\"us\":5,\"cum_bytes\":0}
";
        let r = replay(trace);
        let overlap =
            r.violations.iter().find(|v| v.rule == "round-overlap").expect("overlap violation");
        assert_eq!(overlap.line, Some(2));
        assert_eq!(r.exit_code(), 1);
    }
}
