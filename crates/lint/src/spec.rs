//! Executable specification of the Sub-FedAvg round protocol.
//!
//! [`ProtocolSpec`] is a state machine fed one [`TraceEvent`] at a time in
//! emission (`seq`) order. It models the legal shape of a federation run —
//! PAPER.md Algorithms 1–2 as the engine actually emits them:
//!
//! ```text
//! round:   RoundStart ─ Dropout* ─ ⟨client pipelines⟩ ─ Aggregate ─ Eval? ─ RoundEnd
//! client:  ClientTrain → Download → ClientPrune → PruneGate{1,2}
//!            → Encode → Decode → Upload
//! ```
//!
//! (Training is emitted first because local training runs on worker
//! threads before the serial server loop charges the download it
//! consumed; the *protocol* download precedes training, the *event*
//! follows it.) Client pipelines from different clients may interleave
//! arbitrarily; each client's own events must appear in pipeline order.
//!
//! On top of the per-round / per-client transition rules sit cross-event
//! predicates that token lints and single-site runtime asserts cannot
//! check:
//!
//! - per-(client, track) `pruned_fraction` never decreases and per-client
//!   `Encode.kept` never grows — personal masks only shrink;
//! - wire-format byte accounting: `Encode.bytes = header + packed mask +
//!   4·kept`, the packed-mask length is one constant for the whole trace,
//!   `Upload.bytes = 4·kept (+ mask when a gate fired)`, `Download.bytes`
//!   equals 4× the client's previous kept count;
//! - every `Aggregate` is preceded by decodes from exactly the surviving
//!   sampled clients and reports that count;
//! - every sampled non-survivor carries a `Dropout` with an explicit
//!   skip reason; every fired `PruneGate` follows a `ClientPrune`;
//! - `RoundEnd.cum_bytes` equals the running sum of all transfer bytes;
//! - when a `ClientTrain` records FLOP accounting (`dense_flops > 0`),
//!   its `effective_flops` never exceeds `dense_flops` — a subnetwork
//!   cannot do more work than the dense model — and, per client, the
//!   effective FLOPs never increase across rounds: masks only shrink,
//!   so the per-batch work of a personalized subnetwork only falls;
//! - when a `RoundStart` records cohort sampling (`cohort_size > 0` /
//!   `registered > 0`, see `docs/SCALING.md`), the sampled set must have
//!   exactly `cohort_size` members and every sampled id must lie inside
//!   the registered population — aggregate completeness is then checked
//!   over the sampled *surviving* cohort, not the whole registry.
//!
//! The verifier front-end (file handling, `seq` ordering, reporting)
//! lives in [`crate::conform`].

use std::collections::BTreeMap;
use subfed_metrics::trace::TraceEvent;

/// Tolerance for the pruned-fraction monotonicity predicate: fractions
/// are f32 ratios of integer counts, so anything below this is rounding
/// noise rather than a regrown mask.
const FRACTION_EPS: f32 = 1e-6;

/// Gate reason vocabulary (mirrors `subfed_pruning::GateReason::as_str`).
const GATE_REASONS: [&str; 4] = ["pruned", "acc-below-threshold", "target-reached", "mask-stable"];

/// Gate track vocabulary: Algorithm 1 emits `un`; Algorithm 2 emits
/// `channel` then `un`.
const GATE_TRACKS: [&str; 2] = ["un", "channel"];

/// One protocol violation, with enough context to point back into the
/// trace: the offending round, client (when client-scoped), event kind,
/// and source line (when the caller is replaying a file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable machine-readable rule id, e.g. `phase-order`.
    pub rule: &'static str,
    /// Round the violation belongs to (0 when outside any round).
    pub round: usize,
    /// Client the violation belongs to, when client-scoped.
    pub client: Option<usize>,
    /// The `ev` tag of the offending event (`"<end>"` for end-of-trace
    /// checks).
    pub event: &'static str,
    /// 1-based line of the offending event in the replayed file, when
    /// known.
    pub line: Option<usize>,
    /// Human-readable description of what was illegal and why.
    pub message: String,
}

impl Violation {
    /// `round R [client C] EV [line L]: [rule] message` — the text render.
    pub fn render(&self) -> String {
        let mut ctx = format!("round {}", self.round);
        if let Some(c) = self.client {
            ctx.push_str(&format!(" client {c}"));
        }
        ctx.push_str(&format!(" {}", self.event));
        if let Some(l) = self.line {
            ctx.push_str(&format!(" (line {l})"));
        }
        format!("{ctx}: [{}] {}", self.rule, self.message)
    }

    /// One JSON object per violation, for `--format json`.
    pub fn to_json(&self) -> String {
        let client = self.client.map_or("null".to_string(), |c| c.to_string());
        let line = self.line.map_or("null".to_string(), |l| l.to_string());
        format!(
            "{{\"rule\":\"{}\",\"round\":{},\"client\":{client},\"event\":\"{}\",\
             \"line\":{line},\"message\":\"{}\"}}",
            self.rule,
            self.round,
            self.event,
            escape_json(&self.message)
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Where a surviving client is in its round pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    Sampled,
    Trained,
    Downloaded,
    Pruned,
    Gated,
    Encoded,
    Decoded,
    Uploaded,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Sampled => "sampled",
            Phase::Trained => "trained",
            Phase::Downloaded => "downloaded",
            Phase::Pruned => "pruned",
            Phase::Gated => "gated",
            Phase::Encoded => "encoded",
            Phase::Decoded => "decoded",
            Phase::Uploaded => "uploaded",
        }
    }
}

/// Per-client state within the open round.
#[derive(Debug, Clone)]
struct ClientRound {
    phase: Phase,
    /// Gate tracks already decided this round.
    tracks: Vec<String>,
    /// Whether any gate fired (mask advanced) this round.
    any_fired: bool,
    /// Kept count implied by this round's download (`bytes / 4`).
    kept_before: Option<u64>,
    /// This round's `Encode.bytes`, for the decode-consistency check.
    encode_bytes: Option<u64>,
    /// This round's `Encode.kept`, for the upload byte check.
    encode_kept: Option<u64>,
}

impl ClientRound {
    fn new() -> Self {
        Self {
            phase: Phase::Sampled,
            tracks: Vec::new(),
            any_fired: false,
            kept_before: None,
            encode_bytes: None,
            encode_kept: None,
        }
    }
}

/// State of the currently open round.
#[derive(Debug, Clone)]
struct RoundState {
    round: usize,
    sampled: Vec<usize>,
    survivors: Vec<usize>,
    dropouts: Vec<usize>,
    clients: BTreeMap<usize, ClientRound>,
    aggregated: bool,
    eval_seen: bool,
    /// Sum of this round's download + upload bytes.
    bytes: u64,
}

/// The executable round-protocol state machine.
///
/// Feed events in emission order via [`ProtocolSpec::observe`]; each call
/// returns the violations that event triggered. Call
/// [`ProtocolSpec::finish`] after the last event for end-of-trace checks.
/// The spec never panics on malformed traces — every illegal shape is a
/// reported violation, so a hostile trace cannot crash the verifier.
#[derive(Debug, Clone, Default)]
pub struct ProtocolSpec {
    /// The highest round closed by a `RoundEnd`.
    last_closed: usize,
    open: Option<RoundState>,
    /// Last observed `pruned_fraction` per (client, track).
    gate_fraction: BTreeMap<(usize, String), f32>,
    /// Last observed `Encode.kept` per client.
    prev_kept: BTreeMap<usize, u64>,
    /// Last observed non-zero `ClientTrain.effective_flops` per client.
    prev_flops: BTreeMap<usize, u64>,
    /// Packed-mask byte length, derived from the first `Encode`
    /// (`bytes - header - 4·kept`); constant for the whole trace.
    mask_overhead: Option<u64>,
    /// First-participation download size (4 × model size); every client
    /// starts from the same all-ones mask, so these must all agree.
    full_download: Option<u64>,
    /// `cum_bytes` reported by the last `RoundEnd`.
    cum_bytes: u64,
    /// Number of events observed.
    pub events_seen: usize,
    /// Number of rounds closed.
    pub rounds_seen: usize,
}

/// Wire-format header length (`subfed_core::wire`): magic + reserved +
/// count.
const WIRE_HEADER_BYTES: u64 = 8;
/// Bytes per kept f32 parameter.
const BYTES_PER_PARAM: u64 = 4;

impl ProtocolSpec {
    /// A spec expecting the first event of a fresh trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one event (with its source line, when replaying a file) and
    /// returns the violations it triggered, in detection order.
    pub fn observe(&mut self, event: &TraceEvent, line: Option<usize>) -> Vec<Violation> {
        self.events_seen += 1;
        let mut out = Vec::new();
        let v = |rule: &'static str, round: usize, client: Option<usize>, message: String| {
            Violation { rule, round, client, event: event.kind(), line, message }
        };

        if let TraceEvent::RoundStart { round, sampled, survivors, registered, cohort_size } = event
        {
            if let Some(open) = &self.open {
                out.push(v(
                    "round-overlap",
                    *round,
                    None,
                    format!("round {} started before round {} ended", round, open.round),
                ));
                // Recover by force-closing the stale round so the rest of
                // the trace is still checked.
                self.open = None;
            }
            if *round <= self.last_closed {
                out.push(v(
                    "round-order",
                    *round,
                    None,
                    format!(
                        "round number {} is not greater than the last closed round {}",
                        round, self.last_closed
                    ),
                ));
            }
            for s in survivors {
                if !sampled.contains(s) {
                    out.push(v(
                        "survivor-not-sampled",
                        *round,
                        Some(*s),
                        format!("survivor {s} does not appear in the sampled set"),
                    ));
                }
            }
            // Cohort-sampling fields are 0 in pre-registry traces ("not
            // recorded"); when recorded, the sampled set must agree with
            // the sampler's declared cohort and fit the registry.
            if *cohort_size > 0 && sampled.len() != *cohort_size {
                out.push(v(
                    "cohort-size",
                    *round,
                    None,
                    format!(
                        "round declares a cohort of {cohort_size} clients but sampled {}",
                        sampled.len()
                    ),
                ));
            }
            if *registered > 0 {
                for s in sampled {
                    if *s >= *registered {
                        out.push(v(
                            "cohort-bounds",
                            *round,
                            Some(*s),
                            format!(
                                "sampled client {s} lies outside the registered population \
                                 of {registered}"
                            ),
                        ));
                    }
                }
            }
            let mut clients = BTreeMap::new();
            for &s in survivors {
                clients.insert(s, ClientRound::new());
            }
            self.open = Some(RoundState {
                round: *round,
                sampled: sampled.clone(),
                survivors: survivors.clone(),
                dropouts: Vec::new(),
                clients,
                aggregated: false,
                eval_seen: false,
                bytes: 0,
            });
            return out;
        }

        // Every non-RoundStart event must land inside its own open round.
        let Some(open) = &mut self.open else {
            out.push(v(
                "event-outside-round",
                event.round(),
                event.client(),
                "event arrived with no round open".to_string(),
            ));
            return out;
        };
        if event.round() != open.round {
            out.push(v(
                "event-outside-round",
                event.round(),
                event.client(),
                format!("event is tagged round {} but round {} is open", event.round(), open.round),
            ));
            return out;
        }

        match event {
            TraceEvent::RoundStart { .. } => unreachable!("handled above"),
            TraceEvent::Dropout { round, client, reason } => {
                if !open.sampled.contains(client) {
                    out.push(v(
                        "dropout-not-sampled",
                        *round,
                        Some(*client),
                        format!("dropout for client {client} who was never sampled"),
                    ));
                } else if open.survivors.contains(client) {
                    out.push(v(
                        "dropout-survivor",
                        *round,
                        Some(*client),
                        format!("dropout for client {client} who is listed as a survivor"),
                    ));
                }
                if open.dropouts.contains(client) {
                    out.push(v(
                        "dropout-duplicate",
                        *round,
                        Some(*client),
                        format!("second dropout record for client {client}"),
                    ));
                }
                if reason.is_empty() {
                    out.push(v(
                        "dropout-missing-reason",
                        *round,
                        Some(*client),
                        format!("dropout for client {client} carries no skip reason"),
                    ));
                }
                open.dropouts.push(*client);
            }
            TraceEvent::ClientTrain { round, client, effective_flops, dense_flops, .. } => {
                // FLOP fields are 0 in pre-FLOP-accounting traces; when
                // recorded, the masked work can never exceed the dense work.
                if *dense_flops > 0 && effective_flops > dense_flops {
                    out.push(v(
                        "train-flops",
                        *round,
                        Some(*client),
                        format!(
                            "client {client} reports effective_flops {effective_flops} \
                             above dense_flops {dense_flops}"
                        ),
                    ));
                }
                if *dense_flops > 0 {
                    if let Some(&prev) = self.prev_flops.get(client) {
                        if *effective_flops > prev {
                            out.push(v(
                                "flops-regrow",
                                *round,
                                Some(*client),
                                format!(
                                    "client {client} effective_flops rose from {prev} to \
                                     {effective_flops} — masks only shrink, so per-batch \
                                     work cannot grow"
                                ),
                            ));
                        }
                    }
                    self.prev_flops.insert(*client, *effective_flops);
                }
                out.extend(self.client_step(*round, *client, event.kind(), line, |c| {
                    Self::advance(c, Phase::Sampled, Phase::Trained)
                }));
            }
            TraceEvent::Download { round, client, bytes } => {
                let expected = self.prev_kept.get(client).map(|k| k * BYTES_PER_PARAM);
                let full = &mut self.full_download;
                let mut extra = Vec::new();
                match expected {
                    Some(want) if want != *bytes => extra.push((
                        "download-bytes",
                        format!(
                            "download of {bytes} bytes but the client's mask kept \
                             {} parameters last round ({want} bytes expected)",
                            want / BYTES_PER_PARAM
                        ),
                    )),
                    Some(_) => {}
                    None => match *full {
                        // First participation: the mask is still all-ones,
                        // so every first download is 4 × model size.
                        Some(f) if f != *bytes => extra.push((
                            "download-bytes",
                            format!(
                                "first-participation download of {bytes} bytes, but other \
                                 clients' first downloads were {f} bytes"
                            ),
                        )),
                        Some(_) => {}
                        None => *full = Some(*bytes),
                    },
                }
                if *bytes % BYTES_PER_PARAM != 0 {
                    extra.push((
                        "download-bytes",
                        format!("download of {bytes} bytes is not a whole number of f32s"),
                    ));
                }
                let kept_before = *bytes / BYTES_PER_PARAM;
                out.extend(self.client_step(*round, *client, event.kind(), line, |c| {
                    c.kept_before = Some(kept_before);
                    Self::advance(c, Phase::Trained, Phase::Downloaded)
                }));
                out.extend(extra.into_iter().map(|(rule, message)| Violation {
                    rule,
                    round: *round,
                    client: Some(*client),
                    event: event.kind(),
                    line,
                    message,
                }));
                if let Some(open) = &mut self.open {
                    open.bytes += *bytes;
                }
            }
            TraceEvent::ClientPrune { round, client, .. } => {
                out.extend(self.client_step(*round, *client, event.kind(), line, |c| {
                    Self::advance(c, Phase::Downloaded, Phase::Pruned)
                }));
            }
            TraceEvent::PruneGate {
                round, client, track, fired, reason, pruned_fraction, ..
            } => {
                if !GATE_TRACKS.contains(&track.as_str()) {
                    out.push(v(
                        "gate-track",
                        *round,
                        Some(*client),
                        format!("unknown gate track `{track}`"),
                    ));
                }
                if !GATE_REASONS.contains(&reason.as_str()) {
                    out.push(v(
                        "gate-reason",
                        *round,
                        Some(*client),
                        format!("unknown gate reason `{reason}`"),
                    ));
                } else if *fired != (reason == "pruned") {
                    out.push(v(
                        "gate-fired-mismatch",
                        *round,
                        Some(*client),
                        format!("gate reports fired={fired} but reason `{reason}`"),
                    ));
                }
                let key = (*client, track.clone());
                if let Some(prev) = self.gate_fraction.get(&key) {
                    if *pruned_fraction < prev - FRACTION_EPS {
                        out.push(v(
                            "density-regrow",
                            *round,
                            Some(*client),
                            format!(
                                "pruned fraction of track `{track}` fell from {prev} to \
                                 {pruned_fraction} — personal masks must only shrink"
                            ),
                        ));
                    }
                }
                self.gate_fraction.insert(key, *pruned_fraction);
                let track = track.clone();
                let fired = *fired;
                out.extend(self.client_step(*round, *client, event.kind(), line, |c| {
                    let mut vs = Vec::new();
                    if c.tracks.contains(&track) {
                        vs.push((
                            "gate-duplicate-track",
                            format!("second `{track}` gate decision this round"),
                        ));
                    }
                    c.tracks.push(track.clone());
                    c.any_fired |= fired;
                    // A gate needs a preceding ClientPrune (the candidate
                    // masks it judged); several gates may share one.
                    if c.phase == Phase::Pruned || c.phase == Phase::Gated {
                        c.phase = Phase::Gated;
                    } else {
                        vs.push((
                            "phase-order",
                            format!(
                                "prune_gate arrived in phase `{}` — a gate decision \
                                 requires a preceding `prune` this round",
                                c.phase.name()
                            ),
                        ));
                    }
                    vs
                }));
            }
            TraceEvent::Encode { round, client, bytes, kept, .. } => {
                let kept = *kept as u64;
                let mut extra = Vec::new();
                if *bytes < WIRE_HEADER_BYTES + kept * BYTES_PER_PARAM {
                    extra.push((
                        "mask-overhead",
                        format!(
                            "encoded message of {bytes} bytes cannot hold a header and \
                             {kept} kept parameters"
                        ),
                    ));
                } else {
                    let overhead = *bytes - WIRE_HEADER_BYTES - kept * BYTES_PER_PARAM;
                    match self.mask_overhead {
                        None => {
                            self.mask_overhead = Some(overhead);
                            if let Some(full) = self.full_download {
                                let params = full / BYTES_PER_PARAM;
                                let want = params.div_ceil(8);
                                if overhead != want {
                                    extra.push((
                                        "mask-overhead",
                                        format!(
                                            "packed mask of {overhead} bytes does not match \
                                             the model size implied by downloads \
                                             ({params} params need {want} bytes)"
                                        ),
                                    ));
                                }
                            }
                        }
                        Some(prev) if prev != overhead => extra.push((
                            "mask-overhead",
                            format!(
                                "packed-mask length changed from {prev} to {overhead} \
                                 bytes — the model size is fixed, so it cannot"
                            ),
                        )),
                        Some(_) => {}
                    }
                }
                out.extend(self.client_step(*round, *client, event.kind(), line, |c| {
                    let mut vs = Self::advance(c, Phase::Gated, Phase::Encoded);
                    if let Some(before) = c.kept_before {
                        if kept > before {
                            vs.push((
                                "kept-regrow",
                                format!(
                                    "encode kept {kept} parameters but the mask held \
                                     only {before} at download — masks must only shrink"
                                ),
                            ));
                        } else if c.any_fired && kept >= before {
                            vs.push((
                                "kept-regrow",
                                format!(
                                    "a gate fired but the kept count did not drop \
                                     ({before} → {kept})"
                                ),
                            ));
                        } else if !c.any_fired && kept != before {
                            vs.push((
                                "kept-regrow",
                                format!(
                                    "no gate fired yet the kept count changed \
                                     ({before} → {kept})"
                                ),
                            ));
                        }
                    }
                    c.encode_bytes = Some(*bytes);
                    c.encode_kept = Some(kept);
                    vs
                }));
                self.prev_kept.insert(*client, kept);
            }
            TraceEvent::Decode { round, client, bytes, .. } => {
                let bytes = *bytes;
                out.extend(self.client_step(*round, *client, event.kind(), line, |c| {
                    let mut vs = Self::advance(c, Phase::Encoded, Phase::Decoded);
                    if let Some(enc) = c.encode_bytes {
                        if enc != bytes {
                            vs.push((
                                "decode-bytes",
                                format!("decoded {bytes} bytes but the client encoded {enc}"),
                            ));
                        }
                    }
                    vs
                }));
            }
            TraceEvent::Upload { round, client, bytes } => {
                let bytes = *bytes;
                let mask_overhead = self.mask_overhead;
                out.extend(self.client_step(*round, *client, event.kind(), line, |c| {
                    let mut vs = Self::advance(c, Phase::Decoded, Phase::Uploaded);
                    if let (Some(kept), Some(overhead)) = (c.encode_kept, mask_overhead) {
                        let want = kept * BYTES_PER_PARAM + if c.any_fired { overhead } else { 0 };
                        if bytes != want {
                            vs.push((
                                "upload-bytes",
                                format!(
                                    "upload of {bytes} bytes but {kept} kept parameters \
                                     {} imply {want}",
                                    if c.any_fired {
                                        "plus the changed mask"
                                    } else {
                                        "with an unchanged mask"
                                    }
                                ),
                            ));
                        }
                    }
                    vs
                }));
                if let Some(open) = &mut self.open {
                    open.bytes += bytes;
                }
            }
            TraceEvent::Aggregate { round, updates, .. } => {
                if open.aggregated {
                    out.push(v(
                        "aggregate-duplicate",
                        *round,
                        None,
                        "second aggregate this round".to_string(),
                    ));
                }
                if open.survivors.is_empty() {
                    out.push(v(
                        "aggregate-empty",
                        *round,
                        None,
                        "aggregate in a round with no surviving clients".to_string(),
                    ));
                }
                if *updates != open.survivors.len() {
                    out.push(v(
                        "aggregate-updates",
                        *round,
                        None,
                        format!(
                            "aggregate reports {updates} updates but the round has {} \
                             survivors",
                            open.survivors.len()
                        ),
                    ));
                }
                for (c, state) in &open.clients {
                    if state.phase != Phase::Uploaded {
                        out.push(v(
                            "aggregate-incomplete",
                            *round,
                            Some(*c),
                            format!(
                                "aggregate ran but survivor {c} is only `{}` — the server \
                                 must decode exactly the surviving clients first",
                                state.phase.name()
                            ),
                        ));
                    }
                }
                open.aggregated = true;
            }
            TraceEvent::Eval { round, .. } => {
                if open.eval_seen {
                    out.push(v(
                        "eval-duplicate",
                        *round,
                        None,
                        "second eval this round".to_string(),
                    ));
                }
                if !open.survivors.is_empty() && !open.aggregated {
                    out.push(v(
                        "eval-before-aggregate",
                        *round,
                        None,
                        "eval ran before the round's aggregate".to_string(),
                    ));
                }
                open.eval_seen = true;
            }
            TraceEvent::Invariant { round, context, detail } => {
                out.push(v(
                    "invariant-event",
                    *round,
                    None,
                    format!("runtime invariant failed at `{context}`: {detail}"),
                ));
            }
            TraceEvent::RoundEnd { round, cum_bytes, .. } => {
                if !open.survivors.is_empty() && !open.aggregated {
                    out.push(v(
                        "round-missing-aggregate",
                        *round,
                        None,
                        format!(
                            "round ended without an aggregate despite {} survivors",
                            open.survivors.len()
                        ),
                    ));
                }
                for (c, state) in &open.clients {
                    if state.phase != Phase::Uploaded {
                        out.push(v(
                            "client-incomplete",
                            *round,
                            Some(*c),
                            format!(
                                "survivor {c} ended the round in phase `{}` without \
                                 completing its pipeline",
                                state.phase.name()
                            ),
                        ));
                    }
                }
                for s in &open.sampled {
                    if !open.survivors.contains(s) && !open.dropouts.contains(s) {
                        out.push(v(
                            "dropout-missing",
                            *round,
                            Some(*s),
                            format!(
                                "sampled client {s} neither survived nor has a dropout \
                                 record explaining the skip"
                            ),
                        ));
                    }
                }
                let want = self.cum_bytes + open.bytes;
                if *cum_bytes != want {
                    out.push(v(
                        "cum-bytes",
                        *round,
                        None,
                        format!(
                            "round end reports {cum_bytes} cumulative bytes but previous \
                             total {} + this round's transfers {} = {want}",
                            self.cum_bytes, open.bytes
                        ),
                    ));
                }
                self.cum_bytes = *cum_bytes;
                self.last_closed = open.round;
                self.rounds_seen += 1;
                self.open = None;
            }
        }
        out
    }

    /// End-of-trace checks: the final round must have been closed.
    pub fn finish(&mut self) -> Vec<Violation> {
        let mut out = Vec::new();
        if let Some(open) = self.open.take() {
            out.push(Violation {
                rule: "truncated-trace",
                round: open.round,
                client: None,
                event: "<end>",
                line: None,
                message: format!("trace ends while round {} is still open", open.round),
            });
        }
        out
    }

    /// Runs a per-client transition: locates (or rejects) the client's
    /// round state and applies `step` to it. Returns the violations.
    fn client_step(
        &mut self,
        round: usize,
        client: usize,
        event: &'static str,
        line: Option<usize>,
        step: impl FnOnce(&mut ClientRound) -> Vec<(&'static str, String)>,
    ) -> Vec<Violation> {
        let mk = |rule: &'static str, message: String| Violation {
            rule,
            round,
            client: Some(client),
            event,
            line,
            message,
        };
        let Some(open) = &mut self.open else {
            return vec![mk("event-outside-round", "no round open".to_string())];
        };
        let mut out = Vec::new();
        if open.aggregated {
            out.push(mk(
                "client-event-after-aggregate",
                format!(
                    "client {client} {event} after the round's aggregate — uploads \
                     arriving now were never averaged"
                ),
            ));
        }
        let Some(state) = open.clients.get_mut(&client) else {
            out.push(mk(
                "client-not-survivor",
                format!("client {client} is not a survivor of round {round}"),
            ));
            return out;
        };
        out.extend(step(state).into_iter().map(|(rule, message)| mk(rule, message)));
        out
    }

    /// The standard one-step phase transition `from → to`, reporting a
    /// `phase-order` violation when the client is anywhere else.
    fn advance(c: &mut ClientRound, from: Phase, to: Phase) -> Vec<(&'static str, String)> {
        if c.phase == from {
            c.phase = to;
            Vec::new()
        } else {
            let got = c.phase.name();
            // Advance anyway (to the later of the two) so one slip does
            // not cascade into a violation per subsequent event.
            c.phase = c.phase.max(to);
            vec![(
                "phase-order",
                format!("event arrived in phase `{got}` — expected `{}`", from.name()),
            )]
        }
    }
}

/// The replay-identity predicate: two traces of the same configuration
/// (same seed, same data, any `--workers` setting) must be the *same run*
/// up to scheduling noise.
///
/// Both streams are put into canonical form
/// ([`subfed_metrics::trace::canonicalize`]: wall-times zeroed, events
/// sorted by round/kind/client/content) and must then agree event for
/// event; additionally, every round closed by both runs must report the
/// same `RoundEnd.model_hash` — the bit-level fingerprint of the
/// post-aggregation global model. A mismatch means nondeterminism leaked
/// into the round pipeline (an arrival-order fold, an unseeded RNG, a
/// wall-clock read feeding a decision) and fails the CI gate.
///
/// A hash of `0` means "not recorded" (pre-fingerprint traces, or
/// algorithms with no server model); two unrecorded hashes compare equal
/// so stream identity still decides, but a recorded hash never matches an
/// unrecorded one.
pub fn replay_identity(a: &[TraceEvent], b: &[TraceEvent]) -> Vec<Violation> {
    use subfed_metrics::trace::canonicalize;
    let mk = |round: usize, event: &'static str, message: String| Violation {
        rule: "replay-identity",
        round,
        client: None,
        event,
        line: None,
        message,
    };
    let mut out = Vec::new();

    // Per-round model hashes first: a fingerprint divergence names the
    // earliest round where the aggregated models split, which localises
    // the nondeterminism better than the first differing event.
    let hashes = |evs: &[TraceEvent]| -> BTreeMap<usize, u64> {
        evs.iter()
            .filter_map(|e| match e {
                TraceEvent::RoundEnd { round, model_hash, .. } => Some((*round, *model_hash)),
                _ => None,
            })
            .collect()
    };
    let (ha, hb) = (hashes(a), hashes(b));
    for (round, fa) in &ha {
        match hb.get(round) {
            Some(fb) if fa != fb => out.push(mk(
                *round,
                "round_end",
                format!(
                    "model_hash diverges at round {round}: {fa:016x} vs {fb:016x} — the \
                     aggregated models are not bit-identical across the two runs"
                ),
            )),
            None => out.push(mk(
                *round,
                "round_end",
                format!("round {round} closed in the first run but not in the second"),
            )),
            _ => {}
        }
    }
    for round in hb.keys().filter(|r| !ha.contains_key(r)) {
        out.push(mk(
            *round,
            "round_end",
            format!("round {round} closed in the second run but not in the first"),
        ));
    }

    // Then full canonical-stream identity: every deterministic field of
    // every event must agree.
    let (ca, cb) = (canonicalize(a), canonicalize(b));
    if ca.len() != cb.len() {
        out.push(mk(0, "<replay>", format!("event counts differ: {} vs {}", ca.len(), cb.len())));
    }
    if let Some((i, (ea, eb))) = ca.iter().zip(cb.iter()).enumerate().find(|(_, (x, y))| x != y) {
        out.push(mk(
            ea.round(),
            "<replay>",
            format!(
                "canonical streams diverge at event {i}: `{}` vs `{}`",
                ea.to_json(),
                eb.to_json()
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev_round_start(round: usize, sampled: &[usize], survivors: &[usize]) -> TraceEvent {
        // Legacy (pre-cohort-sampling) shape: registered/cohort_size are
        // "not recorded", so the cohort predicates stay silent.
        TraceEvent::RoundStart {
            round,
            sampled: sampled.to_vec(),
            survivors: survivors.to_vec(),
            registered: 0,
            cohort_size: 0,
        }
    }

    /// A minimal clean round for client set `clients`, model of 100
    /// params (400-byte full download, 13-byte packed mask).
    fn clean_round(round: usize, clients: &[usize], kept: &[u64]) -> Vec<TraceEvent> {
        let mut evs = vec![ev_round_start(round, clients, clients)];
        for &c in clients {
            evs.push(TraceEvent::ClientTrain {
                round,
                client: c,
                us: 1,
                val_acc: 0.5,
                train_loss: 1.0,
                effective_flops: 100,
                dense_flops: 100,
            });
        }
        for (&c, &k) in clients.iter().zip(kept) {
            evs.push(TraceEvent::Download { round, client: c, bytes: 400 });
            evs.push(TraceEvent::ClientPrune { round, client: c, us: 1 });
            evs.push(TraceEvent::PruneGate {
                round,
                client: c,
                track: "un".into(),
                fired: k < 100,
                reason: if k < 100 { "pruned" } else { "mask-stable" }.into(),
                val_acc: 0.5,
                mask_distance: 0.1,
                pruned_fraction: 1.0 - k as f32 / 100.0,
            });
            evs.push(TraceEvent::Encode {
                round,
                client: c,
                us: 1,
                bytes: 8 + 13 + 4 * k,
                kept: k as usize,
            });
            evs.push(TraceEvent::Decode { round, client: c, us: 1, bytes: 8 + 13 + 4 * k });
            let upload = 4 * k + if k < 100 { 13 } else { 0 };
            evs.push(TraceEvent::Upload { round, client: c, bytes: upload });
        }
        evs.push(TraceEvent::Aggregate { round, us: 1, updates: clients.len() });
        let bytes: u64 = clients
            .iter()
            .zip(kept)
            .map(|(_, &k)| 400 + 4 * k + if k < 100 { 13 } else { 0 })
            .sum();
        evs.push(TraceEvent::RoundEnd { round, us: 1, cum_bytes: bytes, model_hash: 0 });
        evs
    }

    fn verify(events: &[TraceEvent]) -> Vec<Violation> {
        let mut spec = ProtocolSpec::new();
        let mut out = Vec::new();
        for (i, e) in events.iter().enumerate() {
            out.extend(spec.observe(e, Some(i + 1)));
        }
        out.extend(spec.finish());
        out
    }

    #[test]
    fn clean_hand_built_round_passes() {
        let vs = verify(&clean_round(1, &[0, 1], &[80, 100]));
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn effective_flops_above_dense_is_flagged() {
        let mut evs = clean_round(1, &[0], &[80]);
        for e in &mut evs {
            if let TraceEvent::ClientTrain { effective_flops, dense_flops, .. } = e {
                *effective_flops = *dense_flops + 1;
            }
        }
        let vs = verify(&evs);
        assert!(vs.iter().any(|v| v.rule == "train-flops"), "{vs:?}");
    }

    #[test]
    fn zero_flop_fields_are_legacy_and_clean() {
        // Traces recorded before FLOP accounting parse with both fields 0;
        // the predicate must not fire on them.
        let mut evs = clean_round(1, &[0], &[80]);
        for e in &mut evs {
            if let TraceEvent::ClientTrain { effective_flops, dense_flops, .. } = e {
                *effective_flops = 0;
                *dense_flops = 0;
            }
        }
        let vs = verify(&evs);
        assert!(vs.is_empty(), "{vs:?}");
    }

    /// `clean_round` with the round's `ClientTrain.effective_flops`
    /// overridden — for exercising the cross-round FLOP predicates.
    fn round_with_flops(round: usize, kept: u64, effective: u64) -> Vec<TraceEvent> {
        let mut evs = clean_round(round, &[0], &[kept]);
        for e in &mut evs {
            if let TraceEvent::ClientTrain { effective_flops, .. } = e {
                *effective_flops = effective;
            }
        }
        evs
    }

    #[test]
    fn effective_flops_rising_across_rounds_is_flagged() {
        let mut evs = round_with_flops(1, 80, 60);
        evs.extend(round_with_flops(2, 80, 80)); // still ≤ dense, but rose
        let vs = verify(&evs);
        assert!(vs.iter().any(|v| v.rule == "flops-regrow"), "{vs:?}");
        assert!(vs.iter().all(|v| v.rule != "train-flops"), "{vs:?}");
    }

    #[test]
    fn effective_flops_nonincreasing_across_rounds_is_clean() {
        let mut evs = round_with_flops(1, 80, 80);
        evs.extend(round_with_flops(2, 80, 80)); // plateau: gates stopped
        evs.extend(round_with_flops(3, 80, 60)); // further pruning
                                                 // (Byte accounting across hand-built rounds is checked elsewhere;
                                                 // here only the FLOP trajectory is under test.)
        let vs = verify(&evs);
        assert!(vs.iter().all(|v| v.rule != "flops-regrow"), "{vs:?}");
        assert!(vs.iter().all(|v| v.rule != "train-flops"), "{vs:?}");
    }

    #[test]
    fn legacy_zero_flop_rounds_do_not_reset_the_flops_baseline() {
        let mut evs = round_with_flops(1, 80, 60);
        // A legacy round with no FLOP accounting in between…
        let mut legacy = clean_round(2, &[0], &[80]);
        for e in &mut legacy {
            if let TraceEvent::ClientTrain { effective_flops, dense_flops, .. } = e {
                *effective_flops = 0;
                *dense_flops = 0;
            }
        }
        evs.extend(legacy);
        // …must neither fire nor forget: a later rise is still caught.
        evs.extend(round_with_flops(3, 80, 80));
        let vs = verify(&evs);
        assert_eq!(vs.iter().filter(|v| v.rule == "flops-regrow").count(), 1, "{vs:?}");
    }

    #[test]
    fn duplicate_round_start_is_flagged() {
        let mut evs = clean_round(1, &[0], &[80]);
        evs.insert(1, ev_round_start(1, &[0], &[0]));
        let vs = verify(&evs);
        assert!(vs.iter().any(|v| v.rule == "round-overlap"), "{vs:?}");
    }

    #[test]
    fn decreasing_round_number_is_flagged() {
        let mut evs = clean_round(2, &[0], &[80]);
        evs.extend(clean_round(1, &[0], &[80]));
        let vs = verify(&evs);
        assert!(vs.iter().any(|v| v.rule == "round-order"), "{vs:?}");
    }

    #[test]
    fn dropped_decode_is_flagged_with_client_context() {
        let mut evs = clean_round(1, &[0], &[80]);
        evs.retain(|e| e.kind() != "decode");
        let vs = verify(&evs);
        let phase = vs.iter().find(|v| v.rule == "phase-order").expect("phase violation");
        assert_eq!(phase.client, Some(0));
        assert_eq!(phase.event, "upload");
        assert!(phase.message.contains("`encoded`"), "{phase:?}");
    }

    #[test]
    fn upload_after_aggregate_is_flagged() {
        let mut evs = clean_round(1, &[0], &[80]);
        let upload_at = evs.iter().position(|e| e.kind() == "upload").unwrap();
        let upload = evs.remove(upload_at);
        let agg_at = evs.iter().position(|e| e.kind() == "aggregate").unwrap();
        evs.insert(agg_at + 1, upload);
        let vs = verify(&evs);
        assert!(vs.iter().any(|v| v.rule == "client-event-after-aggregate"), "{vs:?}");
        assert!(vs.iter().any(|v| v.rule == "aggregate-incomplete"), "{vs:?}");
    }

    #[test]
    fn regrown_density_is_flagged() {
        let mut evs = clean_round(1, &[0], &[80]);
        evs.extend(clean_round(2, &[0], &[80]));
        // Round 2's gate reports a lower pruned fraction than round 1.
        let mut hit = false;
        for e in &mut evs {
            if let TraceEvent::PruneGate { round: 2, pruned_fraction, .. } = e {
                *pruned_fraction = 0.05;
                hit = true;
            }
        }
        assert!(hit);
        let vs = verify(&evs);
        assert!(vs.iter().any(|v| v.rule == "density-regrow"), "{vs:?}");
    }

    #[test]
    fn kept_count_growth_is_flagged() {
        let mut evs = clean_round(1, &[0], &[80]);
        evs.extend(clean_round(2, &[0], &[90])); // regrew 80 -> 90
        let vs = verify(&evs);
        // Round 2's download claims 400 bytes (full) but prev kept was 80,
        // and the encode kept grew.
        assert!(vs.iter().any(|v| v.rule == "download-bytes" || v.rule == "kept-regrow"), "{vs:?}");
    }

    #[test]
    fn upload_byte_mismatch_is_flagged() {
        let mut evs = clean_round(1, &[0], &[80]);
        for e in &mut evs {
            if let TraceEvent::Upload { bytes, .. } = e {
                *bytes += 4;
            }
            if let TraceEvent::RoundEnd { cum_bytes, .. } = e {
                *cum_bytes += 4; // keep the cumulative ledger consistent
            }
        }
        let vs = verify(&evs);
        assert!(vs.iter().any(|v| v.rule == "upload-bytes"), "{vs:?}");
    }

    #[test]
    fn cum_bytes_mismatch_is_flagged() {
        let mut evs = clean_round(1, &[0], &[80]);
        for e in &mut evs {
            if let TraceEvent::RoundEnd { cum_bytes, .. } = e {
                *cum_bytes += 1;
            }
        }
        let vs = verify(&evs);
        assert!(vs.iter().any(|v| v.rule == "cum-bytes"), "{vs:?}");
    }

    #[test]
    fn missing_dropout_record_is_flagged() {
        let mut evs = clean_round(1, &[0], &[80]);
        // Claim client 7 was sampled but never explain its absence.
        if let TraceEvent::RoundStart { sampled, .. } = &mut evs[0] {
            sampled.push(7);
        }
        let vs = verify(&evs);
        let miss = vs.iter().find(|v| v.rule == "dropout-missing").expect("missing dropout");
        assert_eq!(miss.client, Some(7));
    }

    #[test]
    fn empty_dropout_reason_is_flagged() {
        let mut evs = clean_round(1, &[0], &[80]);
        if let TraceEvent::RoundStart { sampled, .. } = &mut evs[0] {
            sampled.push(7);
        }
        evs.insert(1, TraceEvent::Dropout { round: 1, client: 7, reason: String::new() });
        let vs = verify(&evs);
        assert!(vs.iter().any(|v| v.rule == "dropout-missing-reason"), "{vs:?}");
    }

    #[test]
    fn invariant_events_are_violations() {
        let mut evs = clean_round(1, &[0], &[80]);
        evs.insert(
            1,
            TraceEvent::Invariant {
                round: 1,
                context: "aggregate".into(),
                detail: "coverage hole".into(),
            },
        );
        let vs = verify(&evs);
        assert!(vs.iter().any(|v| v.rule == "invariant-event"), "{vs:?}");
    }

    #[test]
    fn truncated_trace_is_flagged() {
        let mut evs = clean_round(1, &[0], &[80]);
        evs.pop(); // drop the round_end
        let vs = verify(&evs);
        assert!(vs.iter().any(|v| v.rule == "truncated-trace"), "{vs:?}");
    }

    #[test]
    fn empty_survivor_round_needs_no_aggregate() {
        let evs = vec![
            ev_round_start(1, &[2], &[]),
            TraceEvent::Dropout { round: 1, client: 2, reason: "crash-injected".into() },
            TraceEvent::RoundEnd { round: 1, us: 1, cum_bytes: 0, model_hash: 0 },
        ];
        let vs = verify(&evs);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn recorded_cohort_fields_pass_when_consistent() {
        let mut evs = clean_round(1, &[0, 1], &[80, 100]);
        if let TraceEvent::RoundStart { registered, cohort_size, .. } = &mut evs[0] {
            *registered = 1_000_000;
            *cohort_size = 2;
        }
        let vs = verify(&evs);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn wrong_cohort_size_is_flagged_by_name() {
        let mut evs = clean_round(1, &[0, 1], &[80, 100]);
        if let TraceEvent::RoundStart { registered, cohort_size, .. } = &mut evs[0] {
            *registered = 1_000_000;
            *cohort_size = 3; // claims 3, sampled only 2
        }
        let vs = verify(&evs);
        let hit = vs.iter().find(|v| v.rule == "cohort-size").expect("cohort-size violation");
        assert_eq!(hit.round, 1);
        assert!(hit.message.contains("cohort of 3"), "{hit:?}");
    }

    #[test]
    fn sampled_id_outside_registry_is_flagged() {
        let mut evs = clean_round(1, &[0, 1], &[80, 100]);
        if let TraceEvent::RoundStart { registered, cohort_size, .. } = &mut evs[0] {
            *registered = 1; // client 1 is out of range
            *cohort_size = 2;
        }
        let vs = verify(&evs);
        let hit = vs.iter().find(|v| v.rule == "cohort-bounds").expect("cohort-bounds violation");
        assert_eq!(hit.client, Some(1));
    }

    #[test]
    fn violation_render_names_round_client_event() {
        let v = Violation {
            rule: "phase-order",
            round: 3,
            client: Some(2),
            event: "upload",
            line: Some(41),
            message: "expected `decoded`".into(),
        };
        assert_eq!(
            v.render(),
            "round 3 client 2 upload (line 41): [phase-order] expected `decoded`"
        );
        assert!(v.to_json().contains("\"rule\":\"phase-order\""));
        assert!(v.to_json().contains("\"client\":2"));
    }

    /// Stamps one round's `RoundEnd.model_hash` (clean_round records 0).
    fn stamp_hash(evs: &mut [TraceEvent], hash: u64) {
        for e in evs.iter_mut() {
            if let TraceEvent::RoundEnd { model_hash, .. } = e {
                *model_hash = hash;
            }
        }
    }

    #[test]
    fn replay_identity_accepts_reordered_but_identical_runs() {
        let a = clean_round(1, &[0, 1], &[80, 90]);
        let mut b = a.clone();
        // A different worker interleaving: client pipelines swap and the
        // wall-times change, but the run is the same run.
        b.swap(1, 2);
        for e in &mut b {
            if let TraceEvent::ClientTrain { us, .. } = e {
                *us += 1000;
            }
        }
        let mut a = a;
        stamp_hash(&mut a, 0xdead_beef_0000_0001);
        stamp_hash(&mut b, 0xdead_beef_0000_0001);
        let vs = replay_identity(&a, &b);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn replay_identity_flags_diverging_model_hashes_by_round() {
        let mut a = clean_round(1, &[0], &[80]);
        let mut b = a.clone();
        stamp_hash(&mut a, 0xaaaa_aaaa_aaaa_aaaa);
        stamp_hash(&mut b, 0xbbbb_bbbb_bbbb_bbbb);
        let vs = replay_identity(&a, &b);
        let hash =
            vs.iter().find(|v| v.message.contains("model_hash diverges")).expect("hash violation");
        assert_eq!(hash.rule, "replay-identity");
        assert_eq!(hash.round, 1);
        assert!(hash.message.contains("aaaaaaaaaaaaaaaa"), "{}", hash.message);
    }

    #[test]
    fn replay_identity_flags_diverging_event_content() {
        let a = clean_round(1, &[0], &[80]);
        let mut b = clean_round(1, &[0], &[79]); // one kept-count differs
        stamp_hash(&mut b, 0);
        let vs = replay_identity(&a, &b);
        assert!(vs.iter().any(|v| v.message.contains("canonical streams diverge")), "{vs:?}");
    }

    #[test]
    fn replay_identity_flags_a_missing_round() {
        let mut a = clean_round(1, &[0], &[80]);
        a.extend(clean_round(2, &[0], &[80]));
        let b = clean_round(1, &[0], &[80]);
        let vs = replay_identity(&a, &b);
        assert!(
            vs.iter().any(|v| v.round == 2 && v.message.contains("not in the second")),
            "{vs:?}"
        );
    }
}
