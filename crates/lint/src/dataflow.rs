//! Dataflow-flavoured analyses over the call graph: the three hot-path
//! rules behind `subfed-lint analyze` (the four concurrency rules live
//! in [`crate::locks`]).
//!
//! * [`HOT_PATH_ALLOC`] — no allocation in hot-reachable code. Flags
//!   `Vec::new()`, `vec![…]`, `.clone()`, `.to_vec()` and `.collect()`
//!   in any function the call graph marks hot. `Vec::with_capacity` is
//!   deliberately *not* flagged: it is the idiom for a justified,
//!   one-time allocation and flagging it would bury the signal.
//! * [`SCRATCH_BEFORE_READ`] — the `Workspace::take_scratch` contract.
//!   A binding initialised from `take_scratch` holds unspecified stale
//!   contents; its **first** non-trivial use must be a write (`&mut`
//!   borrow, `.fill(…)`, `.copy_from_slice(…)`, a `*_mut` iterator, or
//!   an indexed store in a packing loop). The check is linearized —
//!   first-access-must-write over the token order, with one write
//!   assumed to cover the buffer — so it is a hazard filter, not a
//!   proof; the NaN-dirtying property tests in `subfed-tensor` remain
//!   the ground truth for full coverage.
//! * [`PATTERN_REBUILD_IN_LOOP`] — `RowPattern`/`RectPattern` are
//!   once-per-round artifacts (rebuilt only when a mask changes);
//!   constructing one inside a loop in hot-reachable code means paying
//!   the scan-and-index cost per batch. Cold code may build patterns in
//!   loops freely (e.g. once-per-round over layers).
//!
//! All three respect the standard escape hatch: `// lint: allow(rule)`
//! on the finding's line or the line above, audited for staleness by
//! `subfed-lint analyze` itself.

use crate::callgraph::{CallGraph, SourceFile};
use crate::lexer::Token;
use crate::parser::{call_sites, loop_bodies};
use crate::rules::{ident, punct, Finding};
use crate::summaries::alloc_sites;

/// Identifier of the allocation-on-hot-path rule.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Identifier of the scratch-buffer read-before-write rule.
pub const SCRATCH_BEFORE_READ: &str = "scratch-before-read";
/// Identifier of the sparsity-pattern-rebuilt-per-batch rule.
pub const PATTERN_REBUILD_IN_LOOP: &str = "pattern-rebuild-in-loop";

/// The rules owned by `subfed-lint analyze` (vs `check`); `check`'s
/// stale-allow audit ignores directives naming these. The three hot-path
/// rules live here; the four concurrency rules in [`crate::locks`], the
/// four determinism rules in [`crate::taint`], the three totality rules
/// in [`crate::totality`].
pub const ANALYZE_RULES: [&str; 14] = [
    HOT_PATH_ALLOC,
    SCRATCH_BEFORE_READ,
    PATTERN_REBUILD_IN_LOOP,
    crate::locks::RAW_LOCK_UNWRAP,
    crate::locks::LOCK_ORDER,
    crate::locks::ALLOC_UNDER_LOCK,
    crate::locks::GUARD_ACROSS_SPAWN,
    crate::taint::UNSEEDED_RNG,
    crate::taint::SEED_COLLISION,
    crate::taint::WALLCLOCK_TAINT,
    crate::taint::ORDER_SENSITIVE_FOLD,
    crate::totality::PANIC_REACHABLE,
    crate::totality::ARITH_OVERFLOW,
    crate::totality::ERROR_SWALLOW,
];

/// Whether the hot-path rules apply to a file. The metrics crate is
/// scanned by `analyze` for the concurrency rules only: its sinks sit on
/// the *reporting* path, and the name-resolved over-approximation
/// (`.len()`, `.record()` collisions) would otherwise drag them into the
/// hot set and bury the kernel-path signal in telemetry noise.
fn hot_rules_apply(label: &str) -> bool {
    !label.contains("crates/metrics/")
}

/// Runs the three hot-path analyses over the parsed workspace.
/// Suppression is the caller's job (it needs the per-file allow
/// directives).
pub fn dataflow_findings(files: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, witness) in graph.hot_nodes() {
        let node = &graph.nodes[i];
        let file = &files[node.file];
        if !hot_rules_apply(&file.label) {
            continue;
        }
        let def = &file.defs[node.def];
        let Some((open, close)) = def.item.body else { continue };
        check_hot_path_alloc(file, &def.item.name, witness, open, close, &mut out);
        check_pattern_rebuild(file, &def.item.name, witness, open, close, &mut out);
    }
    // The scratch contract is universal: take_scratch hands back stale
    // memory no matter how cold the caller is.
    for file in files {
        for def in &file.defs {
            if file.in_tests(def.item.name_idx) {
                continue;
            }
            let Some((open, close)) = def.item.body else { continue };
            check_scratch_before_read(file, &def.item.name, open, close, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Allocation shapes searched for inside hot bodies — the same site
/// machinery the `alloc-under-lock` rule uses
/// ([`crate::summaries::alloc_sites`]).
fn check_hot_path_alloc(
    file: &SourceFile,
    fn_name: &str,
    witness: &str,
    open: usize,
    close: usize,
    out: &mut Vec<Finding>,
) {
    for site in alloc_sites(&file.lexed.tokens, open, close) {
        out.push(Finding {
            file: file.label.clone(),
            line: site.line,
            rule: HOT_PATH_ALLOC,
            message: format!(
                "{} allocates in `{fn_name}`, which is on the hot path \
                 (reachable from `{witness}`); hoist it to setup, take from the \
                 Workspace, or justify with an allow",
                site.what
            ),
            suppressed: false,
        });
    }
}

/// `RowPattern`/`RectPattern` construction inside loop bodies of hot
/// functions.
fn check_pattern_rebuild(
    file: &SourceFile,
    fn_name: &str,
    witness: &str,
    open: usize,
    close: usize,
    out: &mut Vec<Finding>,
) {
    let toks = &file.lexed.tokens;
    for (lo, hi) in loop_bodies(toks, open, close) {
        for call in call_sites(toks, lo, hi) {
            let Some(q) = call.qualifier.as_deref() else { continue };
            if q == "RowPattern" || q == "RectPattern" {
                out.push(Finding {
                    file: file.label.clone(),
                    line: call.line,
                    rule: PATTERN_REBUILD_IN_LOOP,
                    message: format!(
                        "`{q}::{}` runs inside a loop in hot `{fn_name}` (reachable \
                         from `{witness}`); sparsity patterns are once-per-round \
                         artifacts — build them at install time, not per batch",
                        call.callee
                    ),
                    suppressed: false,
                });
            }
        }
    }
}

/// How one occurrence of a tainted buffer name uses the buffer.
enum Use {
    /// Overwrites contents (or replaces the binding): taint discharged.
    Write,
    /// Observes contents: a finding if it comes before any write.
    Read(&'static str),
    /// Length/capacity queries observe no element.
    Neutral,
    /// `ws.put(name)` or a re-`let`: tracking ends.
    Release,
}

/// Taints every `let [mut] NAME = …take_scratch(…)` binding in the body
/// and requires the first non-neutral use of `NAME` to be a write.
fn check_scratch_before_read(
    file: &SourceFile,
    fn_name: &str,
    open: usize,
    close: usize,
    out: &mut Vec<Finding>,
) {
    let toks = &file.lexed.tokens;
    for t in open..=close {
        if ident(&toks[t]) != Some("take_scratch") || toks.get(t + 1).and_then(punct) != Some('(') {
            continue;
        }
        let Some(name) = binding_name(toks, open, t) else { continue };
        let args_close = matching_paren(toks, t + 1);
        let mut j = args_close + 1;
        while j < close {
            if ident(&toks[j]) == Some(name) {
                match classify_use(toks, j) {
                    Use::Write | Use::Release => break,
                    Use::Neutral => {}
                    Use::Read(how) => {
                        out.push(Finding {
                            file: file.label.clone(),
                            line: toks[j].line,
                            rule: SCRATCH_BEFORE_READ,
                            message: format!(
                                "scratch buffer `{name}` ({how}) in `{fn_name}` before \
                                 any full write; take_scratch returns stale contents — \
                                 fill/copy/pack it first or use Workspace::take"
                            ),
                            suppressed: false,
                        });
                        break;
                    }
                }
            }
            j += 1;
        }
    }
}

/// The `let [mut] NAME =` pattern opening the statement that contains
/// the `take_scratch` call at `t`; `None` when the result is consumed
/// without a binding (the receiver is then responsible).
fn binding_name(toks: &[Token], open: usize, t: usize) -> Option<&str> {
    // Statement start: the nearest `;`/`{`/`}` boundary before `t`.
    let mut s = t;
    while s > open {
        if matches!(punct(&toks[s - 1]), Some(';') | Some('{') | Some('}')) {
            break;
        }
        s -= 1;
    }
    let mut k = s;
    while k < t {
        if ident(&toks[k]) == Some("let") {
            let mut n = k + 1;
            if ident(&toks[n]) == Some("mut") {
                n += 1;
            }
            return ident(&toks[n]);
        }
        k += 1;
    }
    None
}

fn classify_use(toks: &[Token], i: usize) -> Use {
    let prev = i.checked_sub(1).and_then(|p| toks.get(p)).and_then(punct);
    let prev2 = i.checked_sub(2).and_then(|p| toks.get(p)).and_then(punct);
    let prev_id = i.checked_sub(1).and_then(|p| toks.get(p)).and_then(ident);

    // `x.put(name)` releases the buffer; `let name = …` rebinds it.
    if prev == Some('(') && i >= 3 && ident(&toks[i - 2]) == Some("put") {
        return Use::Release;
    }
    if prev_id == Some("let") || (prev_id == Some("mut") && ident(&toks[i - 2]) == Some("let")) {
        return Use::Release;
    }
    // `self.name` / `x.name` is a different value entirely.
    if prev == Some('.') {
        return Use::Neutral;
    }
    if prev_id == Some("mut") && prev2 == Some('&') {
        return Use::Write;
    }
    if prev == Some('&') {
        return Use::Read("borrowed shared");
    }
    match toks.get(i + 1).and_then(punct) {
        Some('.') => {
            let method = ident_at(toks, i + 2).unwrap_or("");
            if matches!(method, "fill" | "copy_from_slice" | "clone_from_slice")
                || method.ends_with("_mut")
            {
                Use::Write
            } else if matches!(method, "len" | "capacity" | "is_empty") {
                Use::Neutral
            } else {
                Use::Read("method-read")
            }
        }
        Some('[') => {
            // Skip chained index/range groups: `buf[a..][..k]`.
            let mut b = matching_bracket(toks, i + 1);
            while toks.get(b + 1).and_then(punct) == Some('[') {
                b = matching_bracket(toks, b + 1);
            }
            let after = toks.get(b + 1).and_then(punct);
            let after2 = toks.get(b + 2).and_then(punct);
            if after == Some('=') && after2 != Some('=') {
                // Indexed store — the packing-loop write idiom.
                Use::Write
            } else if after == Some('.') {
                let method = ident_at(toks, b + 2).unwrap_or("");
                if matches!(method, "fill" | "copy_from_slice" | "clone_from_slice")
                    || method.ends_with("_mut")
                {
                    Use::Write
                } else {
                    Use::Read("indexed read")
                }
            } else {
                Use::Read("indexed read")
            }
        }
        Some('=') if toks.get(i + 2).and_then(punct) != Some('=') && prev != Some('=') => {
            // Whole-binding reassignment discards the stale contents.
            Use::Write
        }
        _ => Use::Read("used by value"),
    }
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    toks.get(i).and_then(ident)
}

fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match punct(t) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

fn matching_bracket(toks: &[Token], open: usize) -> usize {
    let mut depth = 0;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match punct(t) {
            Some('[') => depth += 1,
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn findings(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse("fixture.rs", src)];
        let graph = CallGraph::build(&files);
        dataflow_findings(&files, &graph)
    }

    fn rules_of(fs: &[Finding]) -> Vec<&'static str> {
        fs.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn allocations_in_hot_and_reachable_code_are_flagged() {
        let src = "pub fn forward_ws() { let v = Vec::new(); helper(); }\n\
                   fn helper() { let w = vec![0.0; 4]; let c = x.clone(); \
                   let t = y.to_vec(); let z = it.collect::<Vec<f32>>(); }";
        let fs = findings(src);
        assert_eq!(rules_of(&fs), vec![HOT_PATH_ALLOC; 5], "{fs:?}");
        assert!(fs[0].message.contains("`forward_ws`"));
        assert!(fs[1].message.contains("reachable from `forward_ws`"));
    }

    #[test]
    fn cold_functions_may_allocate() {
        let src = "pub fn forward_ws() { setup(); }\n\
                   // lint: cold\n\
                   fn setup() { let v = Vec::new(); let w = x.clone(); }\n\
                   fn unreached() { let u = vec![1]; }";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn with_capacity_is_the_sanctioned_allocation_idiom() {
        let src = "pub fn gemm() { let v = Vec::with_capacity(8); }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn scratch_read_before_write_is_flagged() {
        let src = "fn f(ws: &mut Workspace) {\n\
                   let mut cols = ws.take_scratch(n);\n\
                   let s: f32 = cols.iter().sum();\n\
                   }";
        let fs = findings(src);
        assert_eq!(rules_of(&fs), vec![SCRATCH_BEFORE_READ], "{fs:?}");
        assert_eq!(fs[0].line, 3);
        assert!(fs[0].message.contains("`cols`"));
    }

    #[test]
    fn scratch_written_first_is_clean() {
        for write in [
            "im2col(&mut cols, x);",
            "cols.fill(0.0);",
            "cols.copy_from_slice(src);",
            "for c in cols.chunks_mut(k) { c.fill(0.0); }",
            "for i in 0..n { cols[i] = x[i]; }",
        ] {
            let src = format!(
                "fn f(ws: &mut Workspace) {{\n\
                 let mut cols = ws.take_scratch(n);\n\
                 {write}\n\
                 let s: f32 = cols.iter().sum();\n\
                 ws.put(cols);\n\
                 }}"
            );
            assert!(findings(&src).is_empty(), "false positive on `{write}`");
        }
    }

    #[test]
    fn scratch_len_query_is_neutral_but_indexed_read_is_not() {
        let neutral = "fn f(ws: &mut W) { let b = ws.take_scratch(n); \
                       let l = b.len(); b.fill(0.0); use_it(&b); }";
        assert!(findings(neutral).is_empty());
        let read = "fn f(ws: &mut W) { let b = ws.take_scratch(n); let v = b[0]; }";
        assert_eq!(rules_of(&findings(read)), vec![SCRATCH_BEFORE_READ]);
    }

    #[test]
    fn scratch_released_unread_or_shadowed_is_clean() {
        let released = "fn f(ws: &mut W) { let b = ws.take_scratch(n); ws.put(b); }";
        assert!(findings(released).is_empty());
        let shadowed =
            "fn f(ws: &mut W) { let b = ws.take_scratch(n); let b = other(); read(&b); }";
        assert!(findings(shadowed).is_empty());
    }

    #[test]
    fn take_is_not_take_scratch() {
        let src = "fn f(ws: &mut W) { let b = ws.take(n); let s: f32 = b.iter().sum(); }";
        assert!(findings(src).is_empty(), "take() zero-fills; only take_scratch taints");
    }

    #[test]
    fn pattern_rebuild_inside_hot_loop_is_flagged() {
        let src = "pub fn forward_ws(&mut self) {\n\
                   for b in 0..batches {\n\
                   let p = RowPattern::from_mask(mask, k);\n\
                   apply(&p);\n\
                   }\n\
                   }";
        let fs = findings(src);
        assert_eq!(rules_of(&fs), vec![PATTERN_REBUILD_IN_LOOP], "{fs:?}");
        assert!(fs[0].message.contains("RowPattern::from_mask"));
    }

    #[test]
    fn pattern_built_outside_loops_or_in_cold_code_is_fine() {
        let hot_outside = "pub fn forward_ws() { let p = RectPattern::from_pattern(rp, c); \
                           for b in 0..n { apply(&p); } }";
        assert!(findings(hot_outside).is_empty());
        let cold_loop = "fn install_sparsity() { for l in layers { \
                         let p = RowPattern::from_mask(m, k); } }";
        assert!(findings(cold_loop).is_empty(), "not hot-reachable");
    }
}
