//! CLI for the in-repo linter.
//!
//! ```text
//! subfed-lint check [--root DIR] [--format text|json]   # exit 1 on findings
//! subfed-lint analyze [--root DIR] [--format text|json] # dataflow rules
//! subfed-lint certify [--root DIR] [--json]             # panic-freedom certificate
//! subfed-lint conform [FILE [FILE2]] [--format text|json] # verify JSONL trace(s)
//! subfed-lint rules                                     # print the catalog
//! ```
//!
//! `check` runs the token/scope rules; `analyze` runs the call-graph
//! dataflow rules (hot-path allocation freedom, the `take_scratch`
//! write-before-read contract, per-batch pattern rebuilds), the
//! interprocedural concurrency rules (raw lock unwraps, lock-order
//! cycles, allocation under a held guard, guards held across
//! spawn/join), the determinism taint rules (unseeded or colliding
//! RNG seeds, wall-clock reads, arrival-order float folds), and the
//! totality rules (panic sources, overflow-prone length math, and
//! swallowed errors on the certified-total paths). Both exit 1 on
//! unsuppressed findings.
//!
//! `certify` condenses the totality walk into the per-entry
//! panic-freedom certificate: one line (or JSON object) per entry in
//! `TOTAL_ENTRIES` plus every `// lint: total`-marked function, carrying
//! the verdict, the unsuppressed witness count, and the counted-allow
//! count. Exit 0 only when every entry is `panic-free`; CI regenerates
//! the `--json` form and diffs it against the committed `CERTIFIED.json`.
//!
//! `conform` replays a `--trace` JSONL log (from FILE, or stdin when FILE
//! is absent or `-`) against the executable round-protocol spec and exits
//! 0 when the trace conforms, 1 on protocol violations, 2 when the input
//! could not be read or parsed. With a second FILE it additionally runs
//! the replay-identity gate: both traces must conform *and* be the same
//! run — canonical event streams and per-round `model_hash` fingerprints
//! bit-for-bit equal (see `docs/PROTOCOL.md` § "Replay identity").

use std::io::BufReader;
use std::path::PathBuf;
use std::process::ExitCode;
use subfed_lint::rules::rule_description;
use subfed_lint::{
    analyze_workspace, certify_workspace, check_workspace, find_workspace_root,
    render_certificates_json, verify_reader, verify_replay_pair, Report, ALL_RULES,
};

fn usage() -> &'static str {
    "usage: subfed-lint <check|analyze|certify|conform|rules> [FILE [FILE2]] [--root DIR] \
     [--format text|json] [--json]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "rules" => {
            for rule in ALL_RULES {
                println!("{rule:<18} {}", rule_description(rule));
            }
            ExitCode::SUCCESS
        }
        "check" => run_scan(&args[1..], check_workspace),
        "analyze" => run_scan(&args[1..], analyze_workspace),
        "certify" => run_certify(&args[1..]),
        "conform" => run_conform(&args[1..]),
        other => {
            eprintln!("unknown command `{other}`\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run_conform(flags: &[String]) -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut format = "text".to_string();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some(v @ ("text" | "json")) => format = v.to_string(),
                _ => {
                    eprintln!("--format must be text or json\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            other if !other.starts_with("--") && files.len() < 2 => {
                files.push(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown flag `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let open = |path: &std::path::Path| match std::fs::File::open(path) {
        Ok(f) => Some(BufReader::new(f)),
        Err(e) => {
            eprintln!("cannot open {}: {e}", path.display());
            None
        }
    };
    let report = match files.as_slice() {
        // Two traces: the replay-identity gate.
        [a, b] => match (open(a), open(b)) {
            (Some(ra), Some(rb)) => verify_replay_pair(ra, rb),
            _ => return ExitCode::from(2),
        },
        [path] if *path != std::path::Path::new("-") => match open(path) {
            Some(r) => verify_reader(r),
            None => return ExitCode::from(2),
        },
        _ => verify_reader(std::io::stdin().lock()),
    };
    if format == "json" {
        for v in &report.violations {
            println!("{}", v.to_json());
        }
    } else {
        for e in &report.parse_errors {
            eprintln!("conform: {e}");
        }
        for v in &report.violations {
            println!("{}", v.render());
        }
        print!("{}", report.summary());
    }
    ExitCode::from(report.exit_code())
}

fn run_certify(flags: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--root needs a value\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            other => {
                eprintln!("unknown flag `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.map_or_else(workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let (certs, files) = match certify_workspace(&root) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", render_certificates_json(&certs));
    } else {
        let width = certs.iter().map(|c| c.entry.len()).max().unwrap_or(0);
        for c in &certs {
            println!(
                "{:<width$}  {:<16}  witnesses={}  allows={}",
                c.entry, c.verdict, c.witnesses, c.allows
            );
        }
        let free = certs.iter().filter(|c| c.verdict == "panic-free").count();
        println!("{free}/{} entry points panic-free across {files} files", certs.len());
    }
    if certs.iter().all(|c| c.verdict == "panic-free") {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn workspace_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    find_workspace_root(&cwd)
}

fn run_scan(flags: &[String], scan: fn(&std::path::Path) -> Result<Report, String>) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--root needs a value\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some(v @ ("text" | "json")) => format = v.to_string(),
                _ => {
                    eprintln!("--format must be text or json\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match scan(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let live = report.unsuppressed();
    if format == "json" {
        for f in &report.findings {
            println!("{}", f.to_json());
        }
    } else {
        for f in &live {
            println!("{}", f.render());
        }
        print!("{}", report.summary());
    }
    if live.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
