//! Seeded violations: random streams whose seeds have no provenance —
//! OS entropy, a wall-clock-derived seed, and an opaque argument the
//! analysis cannot tie back to the run seed. Each makes the federation
//! unreplayable: the same config produces a different model every run,
//! and the replay-identity gate fails on the first RoundEnd hash. The
//! disciplined twins thread the run seed (or a value derived from it)
//! through every construction.

use subfed_tensor::init::SeededRng;

/// Violation (entropy): every run draws a different init.
pub fn init_noise_from_entropy(buf: &mut [f32]) {
    let mut rng = StdRng::from_entropy();
    for v in buf.iter_mut() {
        *v = rng.gen();
    }
}

/// Violation (clock): entropy with extra steps.
pub fn jitter_from_clock() -> u64 {
    let mut rng = SeededRng::new(SystemTime::now().duration_since(UNIX_EPOCH).as_nanos() as u64);
    rng.next_u64()
}

/// Violation (opaque): `ticket` could be anything — a connection id, a
/// counter, an address; nothing ties it to the run seed.
pub fn shuffle_by_ticket(ticket: u64, ids: &mut [usize]) {
    let mut rng = SeededRng::new(ticket);
    shuffle(ids, &mut rng);
}

/// The disciplined twin: seed provenance is visible at the call site.
pub fn shuffle_for_round(run_seed: u64, round: u64, ids: &mut [usize]) {
    let mut rng = SeededRng::new(derive_round_seed(run_seed, round));
    shuffle(ids, &mut rng);
}

fn derive_round_seed(run_seed: u64, round: u64) -> u64 {
    run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(round)
}

fn shuffle(ids: &mut [usize], rng: &mut SeededRng) {
    for i in (1..ids.len()).rev() {
        ids.swap(i, rng.below(i + 1));
    }
}
