//! The escape hatches, exercised end to end: every hazard in this file
//! is either allowed in place or moved behind a `// lint: cold` marker,
//! so `analyze` must report zero unsuppressed findings — and zero stale
//! directives.

pub fn forward_ws(x: &[f32], ws: &mut Workspace) -> Vec<f32> {
    // lint: allow(hot-path-alloc) — output buffer is owned by contract
    let mut out = Vec::new();
    // lint: allow(hot-path-alloc) — one staging copy per call by design
    out.extend_from_slice(&x.to_vec());
    let scratch = ws.take_scratch(x.len());
    // lint: allow(scratch-before-read) — checksum of stale bytes is intentional here
    let _stale_probe: f32 = scratch.iter().sum();
    ws.put(scratch);
    once_per_round(x.len());
    out
}

// lint: cold — runs on mask install, never per batch
fn once_per_round(n: usize) {
    for _l in 0..n {
        let v = vec![0u8; n];
        drop(v);
    }
}
