//! Seeded violation: panic sources reachable from total entry points.
//! `decode_update` is a built-in entry of the totality walk; the hazards
//! hide one and two call hops below it, so only an interprocedural walk
//! with a witness chain can attribute them. A `// lint: total` marker
//! extends the entry set to `parse_record`. The disciplined twins —
//! `debug_assert!`, the poison-tolerant lock helper, and a function no
//! entry reaches — must all stay clean.

use std::sync::{Mutex, MutexGuard};

/// Built-in total entry: the wire decoder fed raw client bytes.
pub fn decode_update(buf: &[u8]) -> Result<Vec<f32>, String> {
    debug_assert!(buf.len() < 1 << 30, "exempt: compiled out of release");
    let n = read_len(buf);
    let out = vec![0.0; n];
    let _guard = lock_unpoisoned(&COUNTER);
    Ok(out)
}

/// One hop down: the unwrap the walk must see through `decode_update`.
fn read_len(buf: &[u8]) -> usize {
    let first = buf.first().unwrap();
    tail_byte(buf, *first as usize)
}

/// Two hops down: bare indexing, witnessed via `read_len`.
fn tail_byte(buf: &[u8], i: usize) -> usize {
    buf[i] as usize
}

// lint: total
pub fn parse_record(bytes: &[u8]) -> u8 {
    match bytes.first() {
        Some(b) => *b,
        None => panic!("marked-total entries must not panic either"),
    }
}

/// Never on a total path: panics in peace, exactly like the
/// `never_reached` sibling of the hot-path fixture.
pub fn never_reached(x: Option<u8>) -> u8 {
    x.expect("no entry reaches this")
}

static COUNTER: Mutex<u64> = Mutex::new(0);

/// Total by construction: the poison-tolerant idiom contains no panic
/// shape, so reaching it from an entry contributes no witness.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
