//! Seeded violation: unchecked length arithmetic on total paths — the
//! `4 * kept` class of bug, where a forged header wraps a byte count
//! and turns a bounds check into an under-allocation. The entry is the
//! built-in `StreamingAccumulator::fold`; the hazards sit in helpers so
//! the walk must cross call edges. Checked math, float math, and
//! hint-free shifts are the clean twins.

pub struct StreamingAccumulator {
    sum: Vec<f32>,
}

impl StreamingAccumulator {
    /// Built-in total entry by qualified name.
    pub fn fold(&mut self, kept: usize, off: usize) -> Result<(), String> {
        let n_bytes = body_len(kept)?;
        let end = advance(off, n_bytes)?;
        self.sum.truncate(end);
        Ok(())
    }
}

/// Violation: `4 * kept` wraps when a header claims ~usize::MAX kept
/// positions, so the later "is the buffer long enough" check passes.
fn body_len(kept: usize) -> Result<usize, String> {
    Ok(4 * kept)
}

/// Violation: compound `+=` on an offset is the same wraparound.
fn advance(off: usize, n_bytes: usize) -> Result<usize, String> {
    let mut end = off;
    end += n_bytes;
    Ok(end)
}

/// Clean twin: checked math carries no unchecked operator token.
pub fn body_len_checked(kept: usize) -> Option<usize> {
    kept.checked_mul(4)
}

/// Clean twin: float scaling is not length math.
pub fn scaled(gain: f32) -> f32 {
    gain * 2.0
}

/// Clean twin: a hint-free bit twiddle (`1 << (i % 8)`-style) is mask
/// construction, not length arithmetic.
pub fn bit(i: usize) -> u8 {
    1 << (i % 8)
}
