//! Seeded violation: two functions acquire the same pair of mutexes in
//! opposite orders — the classic AB/BA deadlock `lock-order` exists to
//! catch. `post` holds `accounts` while taking `audit`; `reconcile`
//! holds `audit` while taking `accounts`; two threads interleaving them
//! each hold the lock the other needs. The disciplined twin takes the
//! pair in the same global order as `post` and adds no cycle.

use std::sync::{Mutex, MutexGuard};

pub struct Ledger {
    accounts: Mutex<Vec<i64>>,
    audit: Mutex<Vec<i64>>,
}

impl Ledger {
    /// Holds `accounts`, then takes `audit`: the A → B direction.
    pub fn post(&self, delta: i64) {
        let mut accounts = lock_side(&self.accounts);
        let mut audit = lock_side(&self.audit);
        if let Some(head) = accounts.first_mut() {
            *head += delta;
        }
        audit.push(delta);
    }

    /// Holds `audit`, then takes `accounts`: B → A — the cycle.
    pub fn reconcile(&self) -> usize {
        let audit = lock_side(&self.audit);
        let accounts = lock_side(&self.accounts);
        audit.len() + accounts.len()
    }

    /// The disciplined twin: same pair, same global order as `post`.
    pub fn settle_consistently(&self, delta: i64) {
        let mut accounts = lock_side(&self.accounts);
        let mut audit = lock_side(&self.audit);
        if let Some(head) = accounts.first_mut() {
            *head -= delta;
        }
        audit.push(-delta);
    }
}

fn lock_side<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
