//! Seeded violations: two "independent" random streams constructed from
//! the same literal seed — one spelled in decimal, one in hex, so only
//! normalized comparison catches the pair. Identical seeds mean
//! identical streams: the client's augmentation noise and the server's
//! probe sampling make exactly the same draws, a correlation the
//! replay-identity gate can never see because it reproduces perfectly.
//! The disciplined twin derives distinct per-use seeds from the run
//! seed.

use subfed_tensor::init::SeededRng;

/// The witness site: the first stream to claim seed 42.
pub fn augmentation_noise(buf: &mut [f32]) {
    let mut rng = SeededRng::new(42);
    for v in buf.iter_mut() {
        *v = rng.uniform_f32(-0.01, 0.01);
    }
}

/// Violation: `0x2A` *is* 42 — this "independent" sampler replays the
/// augmentation stream draw for draw.
pub fn probe_sampler(n: usize) -> usize {
    let mut rng = SeededRng::new(0x2A);
    rng.below(n)
}

/// The disciplined twin: distinct streams, both derived from the run
/// seed with a domain tag.
pub fn tagged_streams(run_seed: u64) -> (SeededRng, SeededRng) {
    let noise = SeededRng::new(run_seed ^ 0xA001);
    let probe = SeededRng::new(run_seed ^ 0xA002);
    (noise, probe)
}
