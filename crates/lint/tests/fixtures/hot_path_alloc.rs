//! Seeded violations for `hot-path-alloc`: every allocation shape the
//! rule knows, spread across a hot entry and a transitively-reachable
//! helper two call-graph hops away.

pub fn forward_ws(x: &[f32], ws: &mut Workspace) -> Vec<f32> {
    let mut out = Vec::new(); // seeded: Vec::new() in a hot entry
    stage_one(x, &mut out);
    out
}

fn stage_one(x: &[f32], out: &mut Vec<f32>) {
    let staging = vec![0.0f32; x.len()]; // seeded: vec![…] one hop down
    stage_two(&staging, out);
}

fn stage_two(staging: &[f32], out: &mut Vec<f32>) {
    let copy = staging.to_vec(); // seeded: .to_vec() two hops down
    let again = copy.clone(); // seeded: .clone()
    let sum: Vec<f32> = again.iter().map(|v| v * 2.0).collect(); // seeded: .collect()
    out.extend_from_slice(&sum);
}

fn never_reached() {
    // Unreachable from any hot entry: allocations here must NOT fire.
    let _quiet = vec![1, 2, 3];
}
