//! Seeded violation for `scratch-before-read`: a `take_scratch` buffer
//! whose first non-trivial use observes the stale contents. The rule is
//! temperature-independent, so no hot entry is needed here.

pub fn fused_reduce(ws: &mut Workspace, n: usize) -> f32 {
    let mut cols = ws.take_scratch(n);
    let total: f32 = cols.iter().sum(); // seeded: read before any write
    cols.fill(0.0);
    ws.put(cols);
    total
}

pub fn disciplined_sibling(ws: &mut Workspace, src: &[f32]) -> f32 {
    // The contract done right: write first, then read. Must NOT fire.
    let mut cols = ws.take_scratch(src.len());
    cols.copy_from_slice(src);
    let total: f32 = cols.iter().sum();
    ws.put(cols);
    total
}
