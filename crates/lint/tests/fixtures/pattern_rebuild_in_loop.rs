//! Seeded violation for `pattern-rebuild-in-loop`: a `RowPattern`
//! constructed inside the per-batch loop of a hot-reachable function.

pub fn train_client_ws(batches: usize, mask: &[f32]) {
    for _b in 0..batches {
        let p = RowPattern::from_mask(mask, 4); // seeded: per-batch rebuild
        apply(&p);
    }
}

// lint: cold — once-per-round install; loops over layers are fine here
pub fn install_all(layers: usize, mask: &[f32]) {
    // Cold code may build patterns in loops: must NOT fire.
    for _l in 0..layers {
        let p = RectPattern::from_mask(mask, 4, 4);
        keep(&p);
    }
}

fn apply(_p: &RowPattern) {}
fn keep(_p: &RectPattern) {}
