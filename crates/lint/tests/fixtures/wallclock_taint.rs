//! Seeded violations: wall-clock reads in library code. A deadline read
//! from `Instant::now()` decides which clients make the round — a
//! decision that moves with machine load, so two runs of the same
//! federation sample different survivor sets and the replay-identity
//! gate fails. A `SystemTime::now()` stamp written into round metadata
//! diverges the trace bytes even when the model agrees. The disciplined
//! twin times spans through `subfed_metrics::trace::Span`, whose `us`
//! payloads the trace canonicalizer zeroes on replay.

use std::time::Instant;

/// Violation: the cutoff decision is tainted by the clock — the first
/// use of `deadline` below is what the finding's witness points at.
pub fn collect_until_deadline(uploads: &mut Vec<Upload>, budget_ms: u64) {
    let deadline = Instant::now();
    while uploads.len() < expected() {
        if deadline.elapsed().as_millis() as u64 > budget_ms {
            break; // late clients silently dropped — unreplayable
        }
        poll(uploads);
    }
}

/// Violation: a wall-clock stamp lands in round metadata.
pub fn stamp_round_meta(meta: &mut RoundMeta) {
    meta.started_unix = SystemTime::now().duration_since(UNIX_EPOCH).as_secs();
}

/// The sanctioned stopwatch: `Span` owns the only legal `now()` reads,
/// and its `us` output is zeroed by `canonicalize` before comparison.
pub struct Span {
    start: Option<Instant>,
}

impl Span {
    pub fn begin() -> Self {
        Self { start: Some(Instant::now()) }
    }

    pub fn elapsed_us(&self) -> u64 {
        self.start.map(|s| s.elapsed().as_micros() as u64).unwrap_or(0)
    }
}

/// The disciplined twin: fixed-count collection, spans for telemetry.
pub fn collect_cohort(uploads: &mut Vec<Upload>, span: &Span) -> u64 {
    while uploads.len() < expected() {
        poll(uploads);
    }
    span.elapsed_us()
}

fn expected() -> usize {
    8
}

fn poll(_uploads: &mut Vec<Upload>) {}
