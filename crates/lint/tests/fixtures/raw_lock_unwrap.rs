//! Seeded violation: bare `.unwrap()`/`.expect(…)` on lock results —
//! the poison bombs `raw-lock-unwrap` exists to catch. One panicking
//! worker poisons the mutex; every later `.unwrap()` then takes the
//! whole process down instead of recovering the still-valid state.
//! The disciplined twin routes the result through a `lock_`-prefixed
//! poison-tolerant helper and stays clean.

use std::sync::{Mutex, MutexGuard, RwLock};

pub struct Board {
    tiles: Mutex<Vec<u32>>,
    scores: RwLock<Vec<u32>>,
}

impl Board {
    /// Violation: panics the whole worker if a sibling panicked first.
    pub fn bump(&self, i: usize) {
        let mut tiles = self.tiles.lock().unwrap();
        if let Some(t) = tiles.get_mut(i) {
            *t += 1;
        }
    }

    /// Violation: `.expect(…)` is the same bomb with a nicer label.
    pub fn top(&self) -> u32 {
        let scores = self.scores.read().expect("scores poisoned");
        scores.first().copied().unwrap_or(0)
    }

    /// Violation: consuming the mutex hits the same poison flag.
    pub fn into_tiles(self) -> Vec<u32> {
        self.tiles.into_inner().unwrap()
    }

    /// The disciplined twin: poison-tolerant, no finding.
    pub fn bump_tolerant(&self, i: usize) {
        let mut tiles = lock_tolerant(&self.tiles);
        if let Some(t) = tiles.get_mut(i) {
            *t += 1;
        }
    }
}

fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
