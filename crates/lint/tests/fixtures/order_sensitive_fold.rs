//! Seeded violation: the arrival-order fold. Workers race to a shared
//! lock and fold their float updates in whatever order they win it —
//! f32 addition is not associative, so the aggregate depends on thread
//! scheduling and the replay-identity gate fails on the model hash.
//! The witness chain must name the folding function, the lock identity,
//! the spawning entry, and the concrete accumulation site it reaches.
//! The disciplined twin waits for its cohort slot's turn before folding
//! (the `OrderedAccumulator` turnstile idiom).

use std::sync::{Condvar, Mutex};
use std::thread;

pub struct RaceFold {
    sums: Mutex<Vec<f32>>,
}

impl RaceFold {
    /// The worker pool: each spawned worker folds on the way out.
    pub fn run_round(&self, cohort: usize) {
        for _ in 0..cohort {
            thread::spawn(move || {});
        }
        self.fold_upload(&[]);
    }

    /// Violation: first-come-first-folded under `sums`.
    pub fn fold_upload(&self, update: &[f32]) {
        let mut sums = lock_unpoisoned(&self.sums);
        accumulate(&mut sums, update);
    }
}

/// The concrete order-sensitive site the witness chain descends to.
fn accumulate(sums: &mut [f32], update: &[f32]) {
    for (s, u) in sums.iter_mut().zip(update) {
        *s += u;
    }
}

pub struct TurnstileFold {
    state: Mutex<(Vec<f32>, usize)>,
    turn: Condvar,
}

impl TurnstileFold {
    pub fn run_round(&self, cohort: usize) {
        for _ in 0..cohort {
            thread::spawn(move || {});
        }
        self.fold_slot(0, &[]);
    }

    /// The disciplined twin: waits for the slot's turn, so folds land in
    /// cohort-slot order no matter which worker wins the lock first.
    pub fn fold_slot(&self, slot: usize, update: &[f32]) {
        let mut st = lock_unpoisoned(&self.state);
        while st.1 != slot {
            st = wait_unpoisoned(&self.turn, st);
        }
        accumulate(&mut st.0, update);
        st.1 += 1;
        self.turn.notify_all();
    }
}
