//! Seeded violation: allocations inside a held critical section — one
//! direct (`vec![…]` under the guard) and one transitive (a call to a
//! helper whose bottom-up summary says it allocates). Allocator traffic
//! under a lock stretches hold times exactly when contention is worst.
//! The disciplined twin allocates first and locks last.

use std::sync::{Mutex, MutexGuard};

pub struct Roster {
    entries: Mutex<Vec<u64>>,
}

/// The allocation `refresh` reaches one call away.
fn rebuild_entries(seed: &[u64]) -> Vec<u64> {
    seed.to_vec()
}

impl Roster {
    /// Violation (direct): stages a buffer while `entries` is held.
    pub fn swap_in(&self, seed: &[u64]) {
        let mut entries = lock_entries(&self.entries);
        let staged = vec![0; seed.len()];
        entries.clear();
        entries.extend_from_slice(&staged);
    }

    /// Violation (transitive): the allocation hides inside the callee.
    pub fn refresh(&self, seed: &[u64]) {
        let mut entries = lock_entries(&self.entries);
        let fresh = rebuild_entries(seed);
        entries.clear();
        entries.extend_from_slice(&fresh);
    }

    /// The disciplined twin: allocate first, lock last.
    pub fn refresh_scoped(&self, seed: &[u64]) {
        let fresh = rebuild_entries(seed);
        let mut entries = lock_entries(&self.entries);
        entries.clear();
        entries.extend_from_slice(&fresh);
    }
}

fn lock_entries<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
