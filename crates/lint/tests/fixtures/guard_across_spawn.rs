//! Seeded violations: a guard held across a `thread::spawn` fan-out,
//! and the loop variant — an outer guard held while a per-item lock is
//! taken each iteration. Spawned workers contend on (or deadlock
//! against) the lock their parent still holds; per-iteration locks
//! under an outer guard serialise every worker behind it. The
//! disciplined twin snapshots under the lock, releases, then fans out.

use std::sync::{Mutex, MutexGuard};
use std::thread;

pub struct Fleet {
    roster: Mutex<Vec<u64>>,
    inflight: Mutex<u64>,
}

impl Fleet {
    /// Violation (direct): the worker starts while `roster` is held.
    pub fn dispatch_all(&self) {
        let roster = lock_fleet(&self.roster);
        thread::spawn(move || {});
        drop(roster);
    }

    /// Violation (loop): `roster` held while `inflight` is taken per item.
    pub fn drain(&self) {
        let roster = lock_fleet(&self.roster);
        for _ in roster.iter() {
            let mut inflight = lock_fleet(&self.inflight);
            *inflight += 1;
        }
    }

    /// The disciplined twin: snapshot, release, then fan out.
    pub fn dispatch_scoped(&self) {
        let count = { lock_fleet(&self.roster).len() };
        for _ in 0..count {
            thread::spawn(move || {});
        }
    }
}

fn lock_fleet<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
