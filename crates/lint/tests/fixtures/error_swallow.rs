//! Seeded violation: error-carrying `Result`s silently discarded. A
//! decoder that reports corruption through a typed `*Error` is only as
//! good as its callers — `let _ =` throws the verdict away entirely and
//! a bare `.ok()` launders it into an anonymous `None`. The clean twins
//! propagate or actually inspect the error.

/// A typed decode failure, like `WireError` on the real wire path.
#[derive(Debug)]
pub struct FrameError;

/// The producer: a `Result` whose error type the rule keys on.
pub fn validate_frame(buf: &[u8]) -> Result<usize, FrameError> {
    if buf.is_empty() {
        return Err(FrameError);
    }
    Ok(buf.len())
}

/// Violation: `let _ =` discards the corruption verdict.
pub fn ingest(buf: &[u8]) {
    let _ = validate_frame(buf);
}

/// Violation: `.ok()` without inspection erases *which* error occurred.
pub fn ingest_lossy(buf: &[u8]) -> Option<usize> {
    validate_frame(buf).ok()
}

/// Clean twin: the verdict is propagated to the caller.
pub fn ingest_checked(buf: &[u8]) -> Result<usize, FrameError> {
    validate_frame(buf)
}

/// Clean twin: the error arm is genuinely handled.
pub fn ingest_defaulted(buf: &[u8]) -> usize {
    match validate_frame(buf) {
        Ok(n) => n,
        Err(FrameError) => 0,
    }
}
