//! Acceptance tests for `subfed-lint analyze` over the seeded-violation
//! fixture corpus in `tests/fixtures/`. Each dataflow rule must catch
//! its seeded hazard **by name**, reachability must extend across call
//! edges, and the suppression machinery (allows, cold markers) must
//! silence exactly what it claims to — with zero stale directives.

use subfed_lint::{analyze_sources, Finding, ANALYZE_RULES};

fn run(label: &str, source: &str) -> Vec<Finding> {
    analyze_sources(&[(label.to_string(), source.to_string())])
}

fn live(fs: &[Finding]) -> Vec<&Finding> {
    fs.iter().filter(|f| !f.suppressed).collect()
}

#[test]
fn hot_path_alloc_fixture_catches_every_allocation_shape() {
    let fs = run("hot_path_alloc.rs", include_str!("fixtures/hot_path_alloc.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 5, "expected the five seeded allocations: {live:#?}");
    assert!(live.iter().all(|f| f.rule == "hot-path-alloc"));
    for shape in ["`Vec::new()`", "`vec![…]`", "`.to_vec()`", "`.clone()`", "`.collect()`"] {
        assert!(
            live.iter().any(|f| f.message.contains(shape)),
            "no finding for {shape}: {live:#?}"
        );
    }
    // Reachability is transitive: the deepest helper is two hops from
    // the entry, and the witness names the entry that dragged it hot.
    assert!(
        live.iter().any(|f| f.message.contains("`stage_two`")
            && f.message.contains("reachable from `forward_ws`")),
        "{live:#?}"
    );
    // The unreachable sibling allocates in peace.
    assert!(live.iter().all(|f| !f.message.contains("never_reached")));
}

#[test]
fn scratch_before_read_fixture_is_caught_and_the_disciplined_twin_is_not() {
    let fs = run("scratch_before_read.rs", include_str!("fixtures/scratch_before_read.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 1, "{live:#?}");
    assert_eq!(live[0].rule, "scratch-before-read");
    assert!(live[0].message.contains("`cols`"), "{}", live[0].message);
    assert!(live[0].message.contains("`fused_reduce`"), "{}", live[0].message);
}

#[test]
fn pattern_rebuild_fixture_is_caught_only_in_the_hot_loop() {
    let fs = run("pattern_rebuild_in_loop.rs", include_str!("fixtures/pattern_rebuild_in_loop.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 1, "{live:#?}");
    assert_eq!(live[0].rule, "pattern-rebuild-in-loop");
    assert!(live[0].message.contains("RowPattern::from_mask"), "{}", live[0].message);
    // The cold install loop builds RectPatterns without complaint.
    assert!(live.iter().all(|f| !f.message.contains("RectPattern")));
}

#[test]
fn suppressed_fixture_is_fully_clean_with_no_stale_directives() {
    let fs = run("clean_suppressed.rs", include_str!("fixtures/clean_suppressed.rs"));
    let live = live(&fs);
    assert!(live.is_empty(), "escape hatches failed to suppress: {live:#?}");
    // The allows must actually bite — the hazards are still *found*.
    assert!(fs.iter().filter(|f| f.suppressed).count() >= 3, "{fs:#?}");
    assert!(fs.iter().all(|f| f.rule != "stale-allow"), "{fs:#?}");
}

#[test]
fn corpus_rules_match_the_analyze_catalog() {
    // Every rule `analyze` owns has a fixture that triggers it.
    let corpus = [
        ("hot_path_alloc.rs", include_str!("fixtures/hot_path_alloc.rs")),
        ("scratch_before_read.rs", include_str!("fixtures/scratch_before_read.rs")),
        ("pattern_rebuild_in_loop.rs", include_str!("fixtures/pattern_rebuild_in_loop.rs")),
        ("raw_lock_unwrap.rs", include_str!("fixtures/raw_lock_unwrap.rs")),
        ("lock_order_cycle.rs", include_str!("fixtures/lock_order_cycle.rs")),
        ("alloc_under_lock.rs", include_str!("fixtures/alloc_under_lock.rs")),
        ("guard_across_spawn.rs", include_str!("fixtures/guard_across_spawn.rs")),
        ("unseeded_rng.rs", include_str!("fixtures/unseeded_rng.rs")),
        ("seed_collision.rs", include_str!("fixtures/seed_collision.rs")),
        ("wallclock_taint.rs", include_str!("fixtures/wallclock_taint.rs")),
        ("order_sensitive_fold.rs", include_str!("fixtures/order_sensitive_fold.rs")),
        ("panic_reachable.rs", include_str!("fixtures/panic_reachable.rs")),
        ("arith_overflow.rs", include_str!("fixtures/arith_overflow.rs")),
        ("error_swallow.rs", include_str!("fixtures/error_swallow.rs")),
    ];
    for rule in ANALYZE_RULES {
        assert!(
            corpus.iter().flat_map(|(l, s)| run(l, s)).any(|f| f.rule == rule && !f.suppressed),
            "no fixture triggers `{rule}`"
        );
    }
}

#[test]
fn fixtures_analyzed_together_keep_per_file_attribution() {
    let inputs: Vec<(String, String)> = [
        ("hot_path_alloc.rs", include_str!("fixtures/hot_path_alloc.rs")),
        ("scratch_before_read.rs", include_str!("fixtures/scratch_before_read.rs")),
        ("pattern_rebuild_in_loop.rs", include_str!("fixtures/pattern_rebuild_in_loop.rs")),
        ("clean_suppressed.rs", include_str!("fixtures/clean_suppressed.rs")),
    ]
    .into_iter()
    .map(|(l, s)| (l.to_string(), s.to_string()))
    .collect();
    let fs = analyze_sources(&inputs);
    let live = live(&fs);
    assert_eq!(live.len(), 7, "{live:#?}");
    // Sorted by (file, line, rule) — stable output for diffing in CI.
    let keys: Vec<_> = live.iter().map(|f| (f.file.clone(), f.line)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
