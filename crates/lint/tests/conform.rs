//! Conformance corpus: golden traces from real Sub-FedAvg runs must
//! replay cleanly through the protocol spec, and each mutated trace must
//! be rejected with the *specific* violation naming the offending
//! round/client/event — the acceptance gate of `subfed-lint conform`.
//!
//! Mutations are applied to the parsed event list and re-serialized with
//! fresh sequence numbers where the JSONL path is exercised: textually
//! reordering lines would be silently undone by the verifier's
//! sort-by-`seq`.

use std::io::Cursor;
use std::sync::Arc;

use subfed_core::algorithms::{SubFedAvgHy, SubFedAvgUn};
use subfed_core::{FedConfig, FederatedAlgorithm, Federation};
use subfed_data::{partition_pathological, PartitionConfig, SynthConfig, SynthVision};
use subfed_lint::conform::{verify_events, verify_reader};
use subfed_metrics::trace::{TraceEvent, Tracer, VecSink};
use subfed_nn::models::ModelSpec;
use subfed_pruning::{HybridController, UnstructuredController};

fn federation(rounds: usize, dropout_prob: f32) -> Federation {
    let data = SynthVision::generate(SynthConfig {
        channels: 1,
        height: 16,
        width: 16,
        classes: 4,
        train_per_class: 24,
        test_per_class: 6,
        noise_std: 0.1,
        shift: 1,
        grid: 4,
        seed: 9,
    });
    let clients = partition_pathological(
        data.train(),
        data.test(),
        &PartitionConfig {
            num_clients: 4,
            shard_size: 12,
            shards_per_client: 2,
            val_fraction: 0.2,
            seed: 9,
        },
    );
    Federation::new(
        ModelSpec::cnn5(1, 16, 16, 4),
        clients,
        FedConfig {
            rounds,
            sample_frac: 0.75,
            local_epochs: 2,
            eval_every: 2,
            seed: 9,
            threads: 1,
            dropout_prob,
            ..Default::default()
        },
    )
}

/// A clean 3-round unstructured (Algorithm 1) trace.
fn golden_un(dropout_prob: f32) -> Vec<TraceEvent> {
    let sink = Arc::new(VecSink::new());
    let fed = federation(3, dropout_prob).with_tracer(Tracer::new(sink.clone()));
    let mut controller = UnstructuredController::paper_defaults(0.5);
    controller.acc_threshold = 0.0;
    controller.rate = 0.2;
    let _ = SubFedAvgUn::with_controller(fed, controller).run();
    sink.snapshot()
}

/// A clean 3-round hybrid (Algorithm 2) trace.
fn golden_hy() -> Vec<TraceEvent> {
    let sink = Arc::new(VecSink::new());
    let fed = federation(3, 0.0).with_tracer(Tracer::new(sink.clone()));
    let mut controller = HybridController::paper_defaults(0.4, 0.5);
    controller.acc_threshold = 0.0;
    controller.unstructured.acc_threshold = 0.0;
    controller.structured_rate = 0.2;
    controller.unstructured.rate = 0.2;
    let _ = SubFedAvgHy::with_controller(fed, controller).run();
    sink.snapshot()
}

/// Serializes events as a JSONL trace with fresh dense seqs `0..n`.
fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut s = String::new();
    for (i, e) in events.iter().enumerate() {
        s.push_str(&e.to_json_seq(i as u64));
        s.push('\n');
    }
    s
}

#[test]
fn golden_un_trace_conforms() {
    let events = golden_un(0.0);
    let report = verify_events(&events);
    assert!(
        report.violations.is_empty(),
        "golden Un trace rejected:\n{}",
        report.violations.iter().map(|v| v.render()).collect::<Vec<_>>().join("\n")
    );
    assert_eq!(report.exit_code(), 0);
    assert_eq!(report.rounds, 3);
}

#[test]
fn golden_hy_trace_conforms() {
    let events = golden_hy();
    let report = verify_events(&events);
    assert!(
        report.violations.is_empty(),
        "golden Hy trace rejected:\n{}",
        report.violations.iter().map(|v| v.render()).collect::<Vec<_>>().join("\n")
    );
    assert_eq!(report.rounds, 3);
    // Both gate tracks really were replayed.
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::PruneGate { track, .. } if track == "channel")));
}

#[test]
fn golden_trace_with_dropouts_conforms() {
    // Crash-injected clients must not trip the verifier: every skipped
    // client carries a dropout record with a reason.
    let events = golden_un(0.6);
    assert!(events.iter().any(|e| e.kind() == "dropout"), "no dropouts at 60%");
    let report = verify_events(&events);
    assert!(
        report.violations.is_empty(),
        "dropout trace rejected:\n{}",
        report.violations.iter().map(|v| v.render()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn golden_jsonl_replays_clean_even_with_shuffled_lines() {
    let events = golden_un(0.0);
    let jsonl = to_jsonl(&events);
    let clean = verify_reader(Cursor::new(jsonl.as_bytes()));
    assert!(clean.is_clean(), "{:?}", (clean.violations, clean.parse_errors));

    // File order is arrival order, not emission order: reverse every line
    // and the verifier must still replay by seq and accept.
    let reversed: String = jsonl.lines().rev().map(|l| format!("{l}\n")).collect();
    let report = verify_reader(Cursor::new(reversed.as_bytes()));
    assert!(
        report.is_clean(),
        "seq ordering not honoured:\n{}",
        report.violations.iter().map(|v| v.render()).collect::<Vec<_>>().join("\n")
    );
    assert_eq!(report.rounds, 3);
}

#[test]
fn mutation_dropped_decode_is_rejected() {
    let mut events = golden_un(0.0);
    let at = events.iter().position(|e| e.kind() == "decode").expect("a decode event");
    let client = events[at].client();
    events.remove(at);
    let report = verify_events(&events);
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == "phase-order")
        .unwrap_or_else(|| panic!("no phase-order violation: {:?}", report.violations));
    assert_eq!(v.event, "upload");
    assert_eq!(v.client, client, "violation must name the client whose decode vanished");
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn mutation_regrown_mask_density_is_rejected() {
    let mut events = golden_un(0.0);
    // Find a (client, track) whose pruned fraction grew between two
    // gates, then rewrite the later gate to report a lower fraction — a
    // regrown mask, which Sub-FedAvg forbids.
    let mut target: Option<(usize, usize, f32)> = None; // (event idx, client, earlier fraction)
    let mut seen: Vec<(usize, String, f32)> = Vec::new();
    for (idx, e) in events.iter().enumerate() {
        if let TraceEvent::PruneGate { client, track, pruned_fraction, .. } = e {
            let prev = seen.iter().rev().find(|(c, t, _)| c == client && t == track);
            if let Some(&(_, _, prev)) = prev {
                if *pruned_fraction > prev {
                    target = Some((idx, *client, prev));
                }
            }
            seen.push((*client, track.clone(), *pruned_fraction));
        }
    }
    let (idx, client, prev) = target.expect("a gate with a grown fraction (pruning fired)");
    if let TraceEvent::PruneGate { pruned_fraction, .. } = &mut events[idx] {
        *pruned_fraction = (prev - 0.1).max(0.0);
    }
    let report = verify_events(&events);
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == "density-regrow")
        .unwrap_or_else(|| panic!("no density-regrow violation: {:?}", report.violations));
    assert_eq!(v.client, Some(client));
    assert_eq!(v.event, "prune_gate");
}

#[test]
fn mutation_upload_after_aggregate_is_rejected() {
    let mut events = golden_un(0.0);
    let agg = events
        .iter()
        .position(|e| e.kind() == "aggregate" && e.round() == 2)
        .expect("round-2 aggregate");
    let upl = events[..agg]
        .iter()
        .rposition(|e| e.kind() == "upload" && e.round() == 2)
        .expect("round-2 upload");
    let moved = events.remove(upl);
    let client = moved.client();
    events.insert(agg, moved); // now sits just after the aggregate
    let report = verify_events(&events);
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == "client-event-after-aggregate")
        .unwrap_or_else(|| panic!("no after-aggregate violation: {:?}", report.violations));
    assert_eq!(v.round, 2);
    assert_eq!(v.client, client);
    assert_eq!(v.event, "upload");
    // The aggregate itself is also flagged: it averaged without this
    // client's update.
    assert!(
        report.violations.iter().any(|v| v.rule == "aggregate-incomplete" && v.round == 2),
        "{:?}",
        report.violations
    );
}

#[test]
fn golden_traces_carry_flop_accounting() {
    // The FLOP predicates are only exercised when dense_flops > 0; the
    // engine must actually record the accounting, or the two mutation
    // tests below are vacuous.
    for events in [golden_un(0.0), golden_hy()] {
        assert!(
            events.iter().any(
                |e| matches!(e, TraceEvent::ClientTrain { dense_flops, .. } if *dense_flops > 0)
            ),
            "golden trace has no FLOP accounting"
        );
    }
}

#[test]
fn mutation_effective_flops_above_dense_is_rejected() {
    let mut events = golden_un(0.0);
    let at = events
        .iter()
        .position(|e| matches!(e, TraceEvent::ClientTrain { dense_flops, .. } if *dense_flops > 0))
        .expect("a train event with FLOP accounting");
    let (round, client) = (events[at].round(), events[at].client());
    if let TraceEvent::ClientTrain { effective_flops, dense_flops, .. } = &mut events[at] {
        *effective_flops = *dense_flops + 1;
    }
    let report = verify_events(&events);
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == "train-flops")
        .unwrap_or_else(|| panic!("no train-flops violation: {:?}", report.violations));
    assert_eq!(v.round, round);
    assert_eq!(v.client, client);
    assert_eq!(v.event, "train");
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn mutation_regrown_effective_flops_is_rejected() {
    let mut events = golden_un(0.0);
    // Two FLOP-accounted trains of the same client in different rounds;
    // lower the earlier one so the later (unchanged) one reads as a rise.
    // Effective FLOPs stay below dense, so only `flops-regrow` may fire.
    let trains: Vec<(usize, usize, Option<usize>)> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            TraceEvent::ClientTrain { dense_flops, .. } if *dense_flops > 0 => {
                Some((i, e.round(), e.client()))
            }
            _ => None,
        })
        .collect();
    let (earlier, later) = trains
        .iter()
        .find_map(|&(i, r, c)| {
            trains.iter().find(|&&(j, r2, c2)| c2 == c && r2 > r && j > i).map(|&(j, ..)| (i, j))
        })
        .expect("a client trained in two FLOP-accounted rounds");
    let (round, client) = (events[later].round(), events[later].client());
    let later_flops = match &events[later] {
        TraceEvent::ClientTrain { effective_flops, .. } => *effective_flops,
        _ => unreachable!("`later` indexes a ClientTrain"),
    };
    if let TraceEvent::ClientTrain { effective_flops, .. } = &mut events[earlier] {
        *effective_flops = later_flops.saturating_sub(1);
    }
    let report = verify_events(&events);
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == "flops-regrow")
        .unwrap_or_else(|| panic!("no flops-regrow violation: {:?}", report.violations));
    assert_eq!(v.round, round);
    assert_eq!(v.client, client);
    assert_eq!(v.event, "train");
    assert!(report.violations.iter().all(|v| v.rule != "train-flops"), "{:?}", report.violations);
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn mutation_duplicate_round_start_is_rejected() {
    let mut events = golden_un(0.0);
    let rs2 = events
        .iter()
        .position(|e| e.kind() == "round_start" && e.round() == 2)
        .expect("round-2 start");
    let dup = events[rs2].clone();
    events.insert(rs2 + 1, dup);
    let report = verify_events(&events);
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == "round-overlap")
        .unwrap_or_else(|| panic!("no round-overlap violation: {:?}", report.violations));
    assert_eq!(v.round, 2);
    assert_eq!(v.event, "round_start");
}

#[test]
fn mutated_jsonl_is_rejected_through_the_file_path_with_line_numbers() {
    // The end-to-end CLI shape: mutate the event list, re-serialize with
    // fresh seqs (NOT by shuffling lines), and replay through the reader.
    let mut events = golden_un(0.0);
    let at = events.iter().position(|e| e.kind() == "decode").expect("a decode event");
    events.remove(at);
    let jsonl = to_jsonl(&events);
    let report = verify_reader(Cursor::new(jsonl.as_bytes()));
    assert_eq!(report.exit_code(), 1);
    let v =
        report.violations.iter().find(|v| v.rule == "phase-order").expect("phase-order violation");
    assert!(v.line.is_some(), "file replay must carry the offending line");
    let rendered = v.render();
    assert!(rendered.contains("upload"), "{rendered}");
    assert!(rendered.contains("line"), "{rendered}");
}

/// A clean 3-round trace from the registry-scale engine: 300 registered
/// clients, sampled cohorts, streaming aggregation (`docs/SCALING.md`).
fn golden_sampled_cohort() -> Vec<TraceEvent> {
    use subfed_core::scale::ScaledSubFedAvg;
    use subfed_data::{SynthClientProvider, SynthProviderConfig};

    let sink = Arc::new(VecSink::new());
    let synth = SynthVision::generate(SynthConfig {
        channels: 1,
        height: 16,
        width: 16,
        classes: 4,
        train_per_class: 24,
        test_per_class: 6,
        noise_std: 0.1,
        shift: 1,
        grid: 4,
        seed: 9,
    });
    let provider = SynthClientProvider::new(
        synth,
        SynthProviderConfig {
            num_clients: 300,
            labels_per_client: 2,
            train_per_label: 6,
            val_per_label: 3,
            test_per_label: 3,
            seed: 9,
        },
    );
    let fed = Federation::from_provider(
        ModelSpec::cnn5(1, 16, 16, 4),
        Arc::new(provider),
        FedConfig {
            rounds: 3,
            sample_frac: 0.02,
            local_epochs: 1,
            eval_every: 2,
            seed: 9,
            threads: 1,
            ..Default::default()
        },
    )
    .with_tracer(Tracer::new(sink.clone()));
    let mut controller = UnstructuredController::paper_defaults(0.5);
    controller.acc_threshold = 0.0;
    controller.rate = 0.2;
    let _ = ScaledSubFedAvg::new(fed, controller).run();
    sink.snapshot()
}

#[test]
fn golden_sampled_cohort_trace_conforms() {
    let events = golden_sampled_cohort();
    // The registry fields really are recorded — otherwise the cohort
    // predicates never fire and the mutation test below is vacuous.
    assert!(
        events.iter().any(|e| matches!(
            e,
            TraceEvent::RoundStart { registered: 300, cohort_size, .. } if *cohort_size > 0
        )),
        "sampled-cohort trace carries no registry accounting"
    );
    let report = verify_events(&events);
    assert!(
        report.violations.is_empty(),
        "golden sampled-cohort trace rejected:\n{}",
        report.violations.iter().map(|v| v.render()).collect::<Vec<_>>().join("\n")
    );
    assert_eq!(report.exit_code(), 0);
    assert_eq!(report.rounds, 3);

    // And through the JSONL file path, as `subfed-lint conform` sees it.
    let report = verify_reader(Cursor::new(to_jsonl(&events).as_bytes()));
    assert!(report.is_clean(), "{:?}", (report.violations, report.parse_errors));
}

#[test]
fn mutation_wrong_cohort_count_is_rejected() {
    let mut events = golden_sampled_cohort();
    let at = events
        .iter()
        .position(|e| e.kind() == "round_start" && e.round() == 2)
        .expect("round-2 start");
    if let TraceEvent::RoundStart { cohort_size, .. } = &mut events[at] {
        *cohort_size += 1; // claims one more client than was sampled
    }
    let report = verify_events(&events);
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == "cohort-size")
        .unwrap_or_else(|| panic!("no cohort-size violation: {:?}", report.violations));
    assert_eq!(v.round, 2);
    assert_eq!(v.event, "round_start");
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn mutation_sampled_id_outside_registry_is_rejected() {
    let mut events = golden_sampled_cohort();
    let at = events
        .iter()
        .position(|e| e.kind() == "round_start" && e.round() == 1)
        .expect("round-1 start");
    if let TraceEvent::RoundStart { sampled, cohort_size, registered, .. } = &mut events[at] {
        sampled.push(*registered); // first id past the registry
        *cohort_size = sampled.len();
    }
    let report = verify_events(&events);
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == "cohort-bounds")
        .unwrap_or_else(|| panic!("no cohort-bounds violation: {:?}", report.violations));
    assert_eq!(v.round, 1);
    assert_eq!(v.event, "round_start");
}
