//! Lexer/parser edge-case corpus plus the whole-workspace robustness
//! sweep: every `.rs` file in every crate must lex and parse without a
//! panic, because the analyzers run unattended in CI over whatever the
//! workspace grows into.

use std::path::{Path, PathBuf};

use subfed_lint::lexer::{lex, TokenKind};
use subfed_lint::parser::{call_sites, impl_ranges, loop_bodies, parse_file};

#[test]
fn lifetimes_lex_as_lifetimes_not_char_literals() {
    let lexed = lex("fn longest<'a>(x: &'a str, y: &'a str) -> &'a str { x }");
    let lifetimes = lexed.tokens.iter().filter(|t| matches!(t.kind, TokenKind::Lifetime)).count();
    assert_eq!(lifetimes, 4, "{:?}", lexed.tokens);
    // And a real char literal next to one still lexes as a char.
    let mixed = lex("fn f<'a>() { let c = 'x'; let nl = '\\n'; }");
    assert_eq!(
        mixed.tokens.iter().filter(|t| matches!(t.kind, TokenKind::Char)).count(),
        2,
        "{:?}",
        mixed.tokens
    );
}

#[test]
fn labeled_loops_and_breaks_parse_as_loops() {
    let src = "fn f(n: usize) { 'outer: for i in 0..n { 'inner: loop { \
               while go() { break 'outer; } break 'inner; } } }";
    let lexed = lex(src);
    let defs = parse_file(&lexed.tokens);
    assert_eq!(defs.len(), 1);
    let (open, close) = defs[0].item.body.expect("body");
    // All three loops recovered despite the labels.
    assert_eq!(loop_bodies(&lexed.tokens, open, close).len(), 3);
}

#[test]
fn turbofish_is_a_call_not_a_comparison() {
    let src = "fn f() { let v = src.iter().collect::<Vec<f32>>(); \
               let w = parse::<u32>(text); }";
    let lexed = lex(src);
    let defs = parse_file(&lexed.tokens);
    let (open, close) = defs[0].item.body.expect("body");
    let calls = call_sites(&lexed.tokens, open, close);
    let names: Vec<&str> = calls.iter().map(|c| c.callee.as_str()).collect();
    assert!(names.contains(&"collect"), "{names:?}");
    assert!(names.contains(&"parse"), "{names:?}");
    // `Vec<f32>` inside the turbofish is a type, not a call.
    assert!(!names.contains(&"Vec"), "{names:?}");
}

#[test]
fn where_clauses_do_not_leak_into_impl_type_names() {
    let src = "impl<T: Copy> Stack<T> where T: Default { fn push(&mut self, v: T) {} }\n\
               impl<A, B> Pair<A, B> for Holder<A> where A: Clone, B: Sized { fn get(&self) {} }";
    let lexed = lex(src);
    let ranges = impl_ranges(&lexed.tokens);
    let names: Vec<&str> = ranges.iter().map(|(n, _, _)| n.as_str()).collect();
    assert_eq!(names, vec!["Stack", "Holder"], "{ranges:?}");
    let defs = parse_file(&lexed.tokens);
    assert_eq!(defs[0].qualified(), "Stack::push");
    assert_eq!(defs[1].qualified(), "Holder::get");
}

#[test]
fn hrtb_bounds_and_impl_trait_args_survive_parsing() {
    let src = "fn apply<F>(f: F) where F: for<'a> Fn(&'a str) -> usize { \
               for x in items { f(x); } }\n\
               fn take(it: impl Iterator<Item = f32>) -> f32 { it.sum() }";
    let lexed = lex(src);
    let defs = parse_file(&lexed.tokens);
    assert_eq!(defs.len(), 2, "{defs:?}");
    let (open, close) = defs[0].item.body.expect("body");
    // The `for<'a>` HRTB is a bound, the `for x in items` is a loop.
    assert_eq!(loop_bodies(&lexed.tokens, open, close).len(), 1);
}

#[test]
fn raw_strings_nested_quotes_and_escapes_do_not_derail_the_lexer() {
    let src = r####"fn f() { let a = r#"has "quotes" inside"#; let b = "esc \" ape"; g(); }"####;
    let lexed = lex(src);
    let defs = parse_file(&lexed.tokens);
    assert_eq!(defs.len(), 1, "string handling swallowed the file: {:?}", lexed.tokens);
    let (open, close) = defs[0].item.body.expect("body");
    let calls = call_sites(&lexed.tokens, open, close);
    assert_eq!(calls.len(), 1, "{calls:?}");
    assert_eq!(calls[0].callee, "g");
}

/// Recursively collects every `.rs` file under `dir`.
fn all_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            all_rs_files(&p, out);
        } else if p.extension().and_then(|x| x.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

#[test]
fn every_workspace_file_lexes_and_parses_without_panicking() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("crates/").to_path_buf();
    let mut files = Vec::new();
    all_rs_files(&root, &mut files);
    assert!(files.len() >= 50, "workspace sweep found only {} files", files.len());
    for path in files {
        let source = std::fs::read_to_string(&path).expect("readable source");
        let lexed = lex(&source);
        // Token lines must stay within the file and never decrease —
        // the cheap structural round-trip the findings' line numbers
        // depend on.
        let line_count = source.lines().count().max(1);
        let mut prev = 1;
        for t in &lexed.tokens {
            assert!(
                t.line >= prev && t.line <= line_count,
                "{}: token line {} out of order (prev {prev}, file has {line_count})",
                path.display(),
                t.line
            );
            prev = t.line;
        }
        // The full analysis stack runs panic-free over every body.
        let defs = parse_file(&lexed.tokens);
        impl_ranges(&lexed.tokens);
        for def in &defs {
            if let Some((open, close)) = def.item.body {
                call_sites(&lexed.tokens, open, close);
                loop_bodies(&lexed.tokens, open, close);
            }
        }
    }
}
