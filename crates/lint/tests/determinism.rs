//! Acceptance tests for the determinism taint rules of `subfed-lint
//! analyze` over the seeded fixtures in `tests/fixtures/`. Each fixture
//! must be rejected with its **named** rule and a witness that points at
//! the offending function (and, for the fold rule, the full chain: lock
//! identity, spawning entry, and the concrete accumulation site) — while
//! the disciplined twins in the same files stay unblamed.

use subfed_lint::analyze_sources;
use subfed_lint::Finding;

fn run(label: &str, source: &str) -> Vec<Finding> {
    analyze_sources(&[(label.to_string(), source.to_string())])
}

fn live(fs: &[Finding]) -> Vec<&Finding> {
    fs.iter().filter(|f| !f.suppressed).collect()
}

#[test]
fn unseeded_rng_fixture_catches_entropy_clock_and_opaque_seeds() {
    let fs = run("unseeded_rng.rs", include_str!("fixtures/unseeded_rng.rs"));
    let live = live(&fs);
    let unseeded: Vec<_> = live.iter().filter(|f| f.rule == "unseeded-rng").collect();
    assert_eq!(unseeded.len(), 3, "{live:#?}");
    assert!(
        unseeded.iter().any(|f| f.message.contains("`from_entropy()`")
            && f.message.contains("`init_noise_from_entropy`")),
        "{unseeded:#?}"
    );
    assert!(
        unseeded
            .iter()
            .any(|f| f.message.contains("wall clock") && f.message.contains("`jitter_from_clock`")),
        "{unseeded:#?}"
    );
    assert!(
        unseeded.iter().any(|f| f.message.contains("no visible provenance")
            && f.message.contains("`shuffle_by_ticket`")),
        "{unseeded:#?}"
    );
    // The clock-seed line is double-tainted: the `now()` read inside the
    // seed expression is a wallclock finding in its own right.
    assert!(live.iter().any(|f| f.rule == "wallclock-taint"), "{live:#?}");
    // The disciplined twin derives from the run seed and is not blamed.
    assert!(live.iter().all(|f| !f.message.contains("shuffle_for_round")), "{live:#?}");
}

#[test]
fn seed_collision_fixture_catches_the_hex_decimal_twin_pair() {
    let fs = run("seed_collision.rs", include_str!("fixtures/seed_collision.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 1, "{live:#?}");
    assert_eq!(live[0].rule, "seed-collision");
    let msg = &live[0].message;
    // The duplicate (`0x2A`) is blamed; the witness names the first
    // claimant of the normalized value 42.
    assert!(msg.contains("literal seed 42"), "{msg}");
    assert!(msg.contains("`probe_sampler`"), "{msg}");
    assert!(msg.contains("`augmentation_noise`"), "{msg}");
    assert!(msg.contains("seed_collision.rs:14"), "{msg}");
    // Distinct derived seeds are not blamed.
    assert!(!msg.contains("tagged_streams"), "{msg}");
}

#[test]
fn wallclock_fixture_catches_both_reads_and_spares_the_span_stopwatch() {
    let fs = run("wallclock_taint.rs", include_str!("fixtures/wallclock_taint.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 2, "{live:#?}");
    assert!(live.iter().all(|f| f.rule == "wallclock-taint"));
    let deadline = live
        .iter()
        .find(|f| f.message.contains("`collect_until_deadline`"))
        .expect("deadline finding");
    // The witness points at the first downstream use of the tainted
    // binding — the cutoff decision.
    assert!(deadline.message.contains("`deadline`"), "{}", deadline.message);
    assert!(deadline.message.contains("line 17"), "{}", deadline.message);
    assert!(
        live.iter().any(|f| f.message.contains("`SystemTime::now()`")
            && f.message.contains("`stamp_round_meta`")),
        "{live:#?}"
    );
    // `Span::begin` reads the clock legally.
    assert!(live.iter().all(|f| !f.message.contains("begin")), "{live:#?}");
}

#[test]
fn order_sensitive_fold_fixture_reports_the_full_witness_chain() {
    let fs = run("order_sensitive_fold.rs", include_str!("fixtures/order_sensitive_fold.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 1, "{live:#?}");
    assert_eq!(live[0].rule, "order-sensitive-fold");
    let msg = &live[0].message;
    // The chain: folding function, lock identity, spawning entry, and
    // the accumulation site it descends to.
    assert!(msg.contains("`RaceFold::fold_upload`"), "{msg}");
    assert!(msg.contains("`RaceFold::sums`"), "{msg}");
    assert!(msg.contains("`RaceFold::run_round`"), "{msg}");
    assert!(msg.contains("via `accumulate`"), "{msg}");
    assert!(msg.contains("not associative"), "{msg}");
    // The turnstile twin waits for its slot and is not blamed.
    assert!(!msg.contains("TurnstileFold"), "{msg}");
}

#[test]
fn determinism_fixtures_analyzed_together_keep_per_file_attribution() {
    let inputs: Vec<(String, String)> = [
        ("unseeded_rng.rs", include_str!("fixtures/unseeded_rng.rs")),
        ("seed_collision.rs", include_str!("fixtures/seed_collision.rs")),
        ("wallclock_taint.rs", include_str!("fixtures/wallclock_taint.rs")),
        ("order_sensitive_fold.rs", include_str!("fixtures/order_sensitive_fold.rs")),
    ]
    .into_iter()
    .map(|(l, s)| (l.to_string(), s.to_string()))
    .collect();
    let fs = analyze_sources(&inputs);
    let live = live(&fs);
    assert_eq!(live.len(), 8, "{live:#?}");
    // Sorted by (file, line, rule) — stable output for diffing in CI.
    let keys: Vec<_> = live.iter().map(|f| (f.file.clone(), f.line)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
    // Seed collisions resolve across files too: 42 in one file and
    // 0x2A in another still collide (here both live in seed_collision.rs,
    // so the count stays the per-file sum).
    assert!(live.iter().any(|f| f.rule == "seed-collision"), "{live:#?}");
}

#[test]
fn allows_suppress_determinism_findings_and_stale_ones_are_audited() {
    let suppressed = "pub fn resample(ticket: u64) {\n\
                      // lint: allow(unseeded-rng) — ticket is mixed from the run seed upstream\n\
                      let mut rng = SeededRng::new(ticket);\n\
                      }";
    let fs = run("fixture.rs", suppressed);
    assert!(live(&fs).is_empty(), "{:?}", live(&fs));
    assert_eq!(fs.iter().filter(|f| f.suppressed).count(), 1, "{fs:#?}");

    let stale = "pub fn resample(run_seed: u64) {\n\
                 // lint: allow(unseeded-rng)\n\
                 let mut rng = SeededRng::new(run_seed);\n\
                 }";
    let fs = run("fixture.rs", stale);
    let live = live(&fs);
    assert_eq!(live.len(), 1, "{live:#?}");
    assert_eq!(live[0].rule, "stale-allow");
    assert!(live[0].message.contains("unseeded-rng"), "{}", live[0].message);
}
