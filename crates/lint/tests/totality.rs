//! Acceptance tests for the totality analyses over the seeded-violation
//! fixtures in `tests/fixtures/`: panic-reachability must cross call
//! edges with a full witness chain, the overflow and swallow rules must
//! catch their seeded hazards by name, every exemption (`debug_assert!`,
//! the poison-tolerant lock idiom, unreachable siblings, counted allows)
//! must hold, and the workspace certificate must match the committed
//! `CERTIFIED.json` byte for byte.

use subfed_lint::{
    analyze_sources, certify_workspace, find_workspace_root, render_certificates_json, Finding,
    TOTAL_ENTRIES,
};

fn run(label: &str, source: &str) -> Vec<Finding> {
    analyze_sources(&[(label.to_string(), source.to_string())])
}

fn live(fs: &[Finding]) -> Vec<&Finding> {
    fs.iter().filter(|f| !f.suppressed).collect()
}

#[test]
fn panic_reachability_crosses_call_edges_with_witness_chains() {
    let fs = run("panic_reachable.rs", include_str!("fixtures/panic_reachable.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 3, "{live:#?}");
    assert!(live.iter().all(|f| f.rule == "panic-reachable"), "{live:#?}");
    // One hop: the unwrap is attributed to the built-in entry with a
    // via chain naming the helper that contains it.
    assert!(
        live.iter().any(|f| f.message.contains("`.unwrap()`")
            && f.message.contains("total entry `decode_update`")
            && f.message.contains("via `read_len`")),
        "{live:#?}"
    );
    // Two hops: the bare indexing carries the full chain.
    assert!(
        live.iter().any(|f| f.message.contains("indexing")
            && f.message.contains("via `read_len` → `tail_byte`")),
        "{live:#?}"
    );
    // The `// lint: total` marker promotes `parse_record` to an entry.
    assert!(
        live.iter()
            .any(|f| f.message.contains("`panic!`")
                && f.message.contains("total entry `parse_record`")),
        "{live:#?}"
    );
    // Exemptions: debug_assert!, the poison-tolerant lock helper, and
    // the function no entry reaches all stay silent.
    assert!(live.iter().all(|f| !f.message.contains("never_reached")), "{live:#?}");
    assert!(live.iter().all(|f| !f.message.contains("lock_unpoisoned")), "{live:#?}");
    assert!(live.iter().all(|f| !f.message.contains("debug_assert")), "{live:#?}");
}

#[test]
fn arith_overflow_catches_length_math_and_spares_the_clean_twins() {
    let fs = run("arith_overflow.rs", include_str!("fixtures/arith_overflow.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 2, "{live:#?}");
    assert!(live.iter().all(|f| f.rule == "arith-overflow"), "{live:#?}");
    assert!(
        live.iter().any(|f| f.message.contains("unchecked `*` on `kept`")
            && f.message.contains("`StreamingAccumulator::fold`")),
        "{live:#?}"
    );
    assert!(live.iter().any(|f| f.message.contains("`+=`")), "{live:#?}");
    // checked_mul, float math, and the hint-free bit twiddle are clean.
    for clean in ["body_len_checked", "scaled", "bit"] {
        assert!(live.iter().all(|f| !f.message.contains(clean)), "{clean}: {live:#?}");
    }
}

#[test]
fn error_swallow_catches_both_discard_shapes() {
    let fs = run("error_swallow.rs", include_str!("fixtures/error_swallow.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 2, "{live:#?}");
    assert!(live.iter().all(|f| f.rule == "error-swallow"), "{live:#?}");
    assert!(
        live.iter().any(|f| f.message.contains("`let _ =`") && f.message.contains("FrameError")),
        "{live:#?}"
    );
    assert!(live.iter().any(|f| f.message.contains("`.ok()`")), "{live:#?}");
}

#[test]
fn counted_allow_suppresses_and_unused_allow_goes_stale() {
    let src = "pub fn decode_update(b: &[u8]) -> usize {\n\
               // lint: allow(panic-reachable)\n\
               b[0] as usize\n\
               }\n";
    let fs = run("allowed.rs", src);
    assert!(live(&fs).is_empty(), "{fs:#?}");
    assert!(
        fs.iter().any(|f| f.rule == "panic-reachable" && f.suppressed),
        "the hazard must still be found, just silenced: {fs:#?}"
    );

    let stale = "pub fn decode_update(b: &[u8]) -> usize {\n\
                 // lint: allow(arith-overflow)\n\
                 b.len()\n\
                 }\n";
    let fs = run("stale.rs", stale);
    let live = live(&fs);
    assert_eq!(live.len(), 1, "{live:#?}");
    assert_eq!(live[0].rule, "stale-allow");
    assert!(live[0].message.contains("arith-overflow"), "{}", live[0].message);
}

#[test]
fn total_marker_on_a_builtin_entry_is_reported_redundant() {
    let src = "// lint: total\n\
               pub fn decode_update(b: &[u8]) -> usize {\n\
               b.len()\n\
               }\n";
    let fs = run("redundant.rs", src);
    let live = live(&fs);
    assert_eq!(live.len(), 1, "{live:#?}");
    assert_eq!(live[0].rule, "stale-allow");
    assert!(live[0].message.contains("redundant"), "{}", live[0].message);
}

#[test]
fn workspace_certificate_matches_the_committed_artifact() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root");
    let (certs, files) = certify_workspace(&root).expect("certify");
    assert!(files >= 30, "only {files} files certified");
    // Every built-in entry is present and panic-free — the registry
    // entry with zero allows, proving the cold-path burn-down.
    assert_eq!(certs.len(), TOTAL_ENTRIES.len(), "{certs:#?}");
    for c in &certs {
        assert!(TOTAL_ENTRIES.contains(&c.entry.as_str()), "{certs:#?}");
        assert_eq!(c.verdict, "panic-free", "{c:#?}");
        assert_eq!(c.witnesses, 0, "{c:#?}");
    }
    let reg = certs.iter().find(|c| c.entry == "ClientRegistry::load").expect("registry entry");
    assert_eq!(reg.allows, 0, "registry must certify without escape hatches: {reg:#?}");
    // The committed certificate is exactly what a fresh run emits — the
    // same diff CI performs.
    let committed = std::fs::read_to_string(root.join("CERTIFIED.json")).expect("CERTIFIED.json");
    assert_eq!(render_certificates_json(&certs), committed, "CERTIFIED.json drifted");
}
