//! Acceptance tests for the concurrency rules of `subfed-lint analyze`
//! over the seeded fixtures in `tests/fixtures/`. Each fixture must be
//! rejected with its **named** violation and a witness chain that
//! points at the offending function and lock identities — and the real
//! workspace's lock-order graph must come out acyclic, with the
//! `OrderedAccumulator` turnstile mutex represented (and legal).

use std::path::Path;
use subfed_lint::callgraph::{CallGraph, SourceFile};
use subfed_lint::{
    analyze_sources, crate_sources, find_workspace_root, Finding, LockGraph, Summaries,
    ANALYZE_CRATES,
};

fn run(label: &str, source: &str) -> Vec<Finding> {
    analyze_sources(&[(label.to_string(), source.to_string())])
}

fn live(fs: &[Finding]) -> Vec<&Finding> {
    fs.iter().filter(|f| !f.suppressed).collect()
}

#[test]
fn raw_lock_unwrap_fixture_catches_all_three_poison_bombs() {
    let fs = run("raw_lock_unwrap.rs", include_str!("fixtures/raw_lock_unwrap.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 3, "{live:#?}");
    assert!(live.iter().all(|f| f.rule == "raw-lock-unwrap"));
    for shape in ["`.lock().unwrap(…)`", "`.read().expect(…)`", "`.into_inner().unwrap(…)`"] {
        assert!(live.iter().any(|f| f.message.contains(shape)), "no finding for {shape}");
    }
    // Every finding routes the reader to the workspace poisoning policy.
    assert!(live.iter().all(|f| f.message.contains("lock_unpoisoned")));
}

#[test]
fn lock_order_cycle_fixture_reports_both_edges_with_witnesses() {
    let fs = run("lock_order_cycle.rs", include_str!("fixtures/lock_order_cycle.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 1, "{live:#?}");
    assert_eq!(live[0].rule, "lock-order");
    let msg = &live[0].message;
    // The witness chain names both directions, the functions that take
    // them, and the consequence.
    assert!(msg.contains("`Ledger::accounts` → `Ledger::audit`"), "{msg}");
    assert!(msg.contains("`Ledger::audit` → `Ledger::accounts`"), "{msg}");
    assert!(msg.contains("`Ledger::post`") && msg.contains("`Ledger::reconcile`"), "{msg}");
    assert!(msg.contains("deadlock"), "{msg}");
    // The consistently-ordered twin is not blamed.
    assert!(!msg.contains("settle_consistently"), "{msg}");
}

#[test]
fn alloc_under_lock_fixture_catches_direct_and_transitive_shapes() {
    let fs = run("alloc_under_lock.rs", include_str!("fixtures/alloc_under_lock.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 2, "{live:#?}");
    assert!(live.iter().all(|f| f.rule == "alloc-under-lock"));
    let direct = live
        .iter()
        .find(|f| f.message.contains("`vec![…]` allocates while `Roster::entries`"))
        .expect("direct finding");
    assert!(direct.message.contains("`Roster::swap_in`"), "{}", direct.message);
    let transitive = live
        .iter()
        .find(|f| f.message.contains("call to `rebuild_entries`"))
        .expect("transitive finding");
    // The witness chain descends into the callee's allocation site.
    assert!(transitive.message.contains("`.to_vec()`"), "{}", transitive.message);
    assert!(transitive.message.contains("`Roster::refresh`"), "{}", transitive.message);
    // The allocate-first twin is clean.
    assert!(live.iter().all(|f| !f.message.contains("refresh_scoped")));
}

#[test]
fn guard_across_spawn_fixture_catches_spawn_and_loop_variants() {
    let fs = run("guard_across_spawn.rs", include_str!("fixtures/guard_across_spawn.rs"));
    let live = live(&fs);
    assert_eq!(live.len(), 2, "{live:#?}");
    assert!(live.iter().all(|f| f.rule == "guard-across-spawn"));
    assert!(
        live.iter().any(|f| f.message.contains("held across `spawn(…)`")
            && f.message.contains("`Fleet::roster`")
            && f.message.contains("`Fleet::dispatch_all`")),
        "{live:#?}"
    );
    assert!(
        live.iter().any(|f| f.message.contains("loop acquiring `Fleet::inflight`")
            && f.message.contains("`Fleet::drain`")),
        "{live:#?}"
    );
    // The snapshot-then-spawn twin is clean.
    assert!(live.iter().all(|f| !f.message.contains("dispatch_scoped")));
}

#[test]
fn lock_fixtures_analyzed_together_keep_per_file_attribution() {
    let inputs: Vec<(String, String)> = [
        ("raw_lock_unwrap.rs", include_str!("fixtures/raw_lock_unwrap.rs")),
        ("lock_order_cycle.rs", include_str!("fixtures/lock_order_cycle.rs")),
        ("alloc_under_lock.rs", include_str!("fixtures/alloc_under_lock.rs")),
        ("guard_across_spawn.rs", include_str!("fixtures/guard_across_spawn.rs")),
    ]
    .into_iter()
    .map(|(l, s)| (l.to_string(), s.to_string()))
    .collect();
    let fs = analyze_sources(&inputs);
    let live = live(&fs);
    assert_eq!(live.len(), 8, "{live:#?}");
    // Sorted by (file, line, rule) — stable output for diffing in CI.
    let keys: Vec<_> = live.iter().map(|f| (f.file.clone(), f.line)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn workspace_lock_graph_is_acyclic_and_sees_the_turnstile() {
    // The acceptance gate of the lock-order analysis itself: the five
    // analyzed crates produce an acyclic lock-order graph, and the
    // `OrderedAccumulator` turnstile mutex is in it (condvar waits
    // release the lock, so the turnstile contributes no edges).
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root");
    let sources = crate_sources(&root, &ANALYZE_CRATES).expect("scan");
    let files: Vec<SourceFile> =
        sources.iter().map(|(label, text)| SourceFile::parse(label, text)).collect();
    let graph = CallGraph::build(&files);
    let summaries = Summaries::build(&files, &graph);
    let lg = LockGraph::build(&files, &graph, &summaries);
    assert!(
        lg.nodes.iter().any(|n| n == "OrderedAccumulator::state"),
        "turnstile lock missing from the graph: {:?}",
        lg.nodes
    );
    let cycles = lg.cycles();
    assert!(cycles.is_empty(), "workspace lock-order cycles: {cycles:?} over {:?}", lg.nodes);
}
