//! # sub-fedavg
//!
//! A from-scratch Rust reproduction of **"Personalized Federated Learning
//! by Structured and Unstructured Pruning under Data Heterogeneity"**
//! (Vahidian, Morafah, Lin — ICDCS 2021).
//!
//! Under non-IID client data a single global model serves everyone poorly.
//! Sub-FedAvg personalizes by letting every client iteratively prune its
//! copy of the network — unstructured magnitude pruning (Algorithm 1) or
//! hybrid channel + FC pruning (Algorithm 2) — while the server averages
//! each parameter only over the clients whose subnetwork retains it.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`tensor`] — dense f32 tensor substrate;
//! * [`nn`] — layers, models (CNN-5 / LeNet-5), masks, SGD;
//! * [`data`] — synthetic vision datasets and the paper's pathological
//!   non-IID partitioner;
//! * [`pruning`] — unstructured / structured / hybrid pruning and the
//!   gating controllers;
//! * [`core`] — the federation engine, Sub-FedAvg, and every baseline;
//! * [`metrics`] — communication-cost and FLOP models plus reporting.
//!
//! # Quickstart
//!
//! ```no_run
//! use sub_fedavg::core::{algorithms::SubFedAvgUn, FedConfig, FederatedAlgorithm, Federation};
//! use sub_fedavg::data::{partition_pathological, PartitionConfig, SynthVision};
//! use sub_fedavg::nn::models::ModelSpec;
//!
//! // A 10-class MNIST stand-in, split pathologically across 16 clients.
//! let dataset = SynthVision::mnist_like(7, 1);
//! let clients = partition_pathological(
//!     dataset.train(),
//!     dataset.test(),
//!     &PartitionConfig { num_clients: 16, shard_size: 18, ..Default::default() },
//! );
//! let fed = Federation::new(
//!     ModelSpec::cnn5(1, 16, 16, 10),
//!     clients,
//!     FedConfig { rounds: 15, ..Default::default() },
//! );
//! // Sub-FedAvg (Un) with a 50% target pruning rate.
//! let history = SubFedAvgUn::new(fed, 0.5).run();
//! println!(
//!     "accuracy {:.1}%, sparsity {:.0}%, comm {} bytes",
//!     100.0 * history.final_avg_acc(),
//!     100.0 * history.final_pruned_params(),
//!     history.total_bytes(),
//! );
//! ```

pub use subfed_core as core;
pub use subfed_data as data;
pub use subfed_metrics as metrics;
pub use subfed_nn as nn;
pub use subfed_pruning as pruning;
pub use subfed_tensor as tensor;
