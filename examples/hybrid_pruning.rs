//! Sub-FedAvg (Hy): hybrid pruning — structured channel pruning on conv
//! blocks (network slimming via BatchNorm |γ|) plus unstructured pruning
//! on the FC layers — and the FLOP reduction it buys (Remark-3).
//!
//! ```sh
//! cargo run --release --example hybrid_pruning
//! ```

use sub_fedavg::core::analysis::channel_jaccard;
use sub_fedavg::core::{algorithms::SubFedAvgHy, FedConfig, FederatedAlgorithm, Federation};
use sub_fedavg::data::stats::label_jaccard;
use sub_fedavg::data::{partition_pathological, PartitionConfig, SynthVision};
use sub_fedavg::metrics::comm::human_bytes;
use sub_fedavg::metrics::flops::{conv_flop_reduction, dense_conv_flops};
use sub_fedavg::nn::models::ModelSpec;
use sub_fedavg::pruning::{ChannelMask, HybridController};

fn main() {
    let dataset = SynthVision::cifar10_like(19, 1);
    let clients = partition_pathological(
        dataset.train(),
        dataset.test(),
        &PartitionConfig { num_clients: 12, shard_size: 25, ..Default::default() },
    );
    let spec = ModelSpec::lenet5(3, 16, 16, 10);
    let fed = Federation::new(
        spec,
        clients.clone(),
        FedConfig { rounds: 10, sample_frac: 0.5, eval_every: 5, ..Default::default() },
    );

    // Aim for half the channels and 70% of the FC weights, with a faster
    // per-round rate than the paper so the target is reachable in 10
    // rounds.
    let mut controller = HybridController::paper_defaults(0.5, 0.7);
    controller.structured_rate = 0.15;
    controller.unstructured.rate = 0.15;
    let mut algo = SubFedAvgHy::with_controller(fed, controller);
    println!("running {} ...", algo.name());
    let h = algo.run();

    println!(
        "final: accuracy {:.1}%, channels pruned {:.0}%, weights pruned {:.0}%, comm {}",
        100.0 * h.final_avg_acc(),
        100.0 * h.final_pruned_channels(),
        100.0 * h.final_pruned_params(),
        human_bytes(h.total_bytes()),
    );

    // What does that channel rate buy in inference FLOPs? (Remark-3: the
    // paper reports up to 2.4x at ~50% channels on paper-scale LeNet-5.)
    let paper_spec = ModelSpec::lenet5(3, 32, 32, 10);
    let rate = h.final_pruned_channels();
    let kept0 = ((1.0 - rate) * 6.0).round().max(1.0) as usize;
    let kept1 = ((1.0 - rate) * 16.0).round().max(1.0) as usize;
    let mask = ChannelMask::from_keep(vec![
        (0..6).map(|c| c < kept0).collect(),
        (0..16).map(|c| c < kept1).collect(),
    ]);
    println!(
        "at paper scale (LeNet-5, 32x32): dense conv FLOPs = {}, reduction at the \
         achieved channel rate = {:.2}x",
        dense_conv_flops(&paper_spec),
        conv_flop_reduction(&paper_spec, &mask),
    );

    // Partner discovery at channel level: label-overlapping clients keep
    // more of the same channels.
    let channels = algo.final_channels();
    let mut overlap = Vec::new();
    let mut disjoint = Vec::new();
    for i in 0..clients.len() {
        for j in i + 1..clients.len() {
            let sim = channel_jaccard(&channels[i], &channels[j]);
            if label_jaccard(&clients[i], &clients[j]) > 0.0 {
                overlap.push(sim);
            } else {
                disjoint.push(sim);
            }
        }
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    println!(
        "channel-level partner discovery: overlapping pairs share {:.3} of their \
         channels vs {:.3} for disjoint pairs",
        mean(&overlap),
        mean(&disjoint),
    );
}
