//! Checkpointing a long federation: pause Sub-FedAvg mid-run, serialise
//! the server's state (round counter, global parameters, every client's
//! mask) to bytes, restore it, and continue — the resumed run reproduces
//! the uninterrupted run's training state exactly.
//!
//! ```sh
//! cargo run --release --example checkpoint_resume
//! ```

use sub_fedavg::core::checkpoint::Checkpoint;
use sub_fedavg::core::{algorithms::SubFedAvgUn, FedConfig, FederatedAlgorithm, Federation};
use sub_fedavg::data::{partition_pathological, PartitionConfig, SynthVision};
use sub_fedavg::metrics::comm::human_bytes;
use sub_fedavg::nn::models::ModelSpec;
use sub_fedavg::pruning::UnstructuredController;

fn federation(rounds: usize) -> Federation {
    let dataset = SynthVision::mnist_like(61, 1);
    let clients = partition_pathological(
        dataset.train(),
        dataset.test(),
        &PartitionConfig { num_clients: 10, shard_size: 25, ..Default::default() },
    );
    Federation::new(
        ModelSpec::cnn5(1, 16, 16, 10),
        clients,
        FedConfig { rounds, sample_frac: 0.5, eval_every: rounds, ..Default::default() },
    )
}

fn controller() -> UnstructuredController {
    let mut c = UnstructuredController::paper_defaults(0.5);
    c.rate = 0.15;
    c
}

fn main() {
    // Phase 1: run the first half and checkpoint.
    let mut first = SubFedAvgUn::with_controller(federation(5), controller());
    println!("running rounds 1..=5 ...");
    let _ = first.run();
    let ckpt = first.checkpoint();
    let bytes = ckpt.encode();
    println!(
        "checkpoint at round {}: {} ({} params, {} client masks)",
        ckpt.round,
        human_bytes(bytes.len() as u64),
        ckpt.global.len(),
        ckpt.client_masks.len(),
    );

    // The bytes could now go to disk / object storage; decode restores
    // the identical state.
    let restored = Checkpoint::decode(&bytes).expect("checkpoint decodes");

    // Phase 2: a brand-new process resumes to round 10.
    let mut second = SubFedAvgUn::with_controller(federation(10), controller());
    second.restore(&restored);
    println!("resuming rounds 6..=10 ...");
    let resumed = second.resume();

    // Reference: the same 10 rounds without interruption.
    let mut straight = SubFedAvgUn::with_controller(federation(10), controller());
    let _ = straight.run();

    let same_global = second.checkpoint().global == straight.checkpoint().global;
    let same_masks = second.checkpoint().client_masks == straight.checkpoint().client_masks;
    println!(
        "resumed == uninterrupted? global: {same_global}, masks: {same_masks} \
         (both must be true)"
    );
    println!(
        "final (resumed): accuracy {:.1}%, sparsity {:.0}%",
        100.0 * resumed.final_avg_acc(),
        100.0 * resumed.final_pruned_params(),
    );
}
