//! Quickstart: run Sub-FedAvg (Un) on a pathologically non-IID federation
//! and print the personalized accuracy, sparsity, and communication cost.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sub_fedavg::core::{algorithms::SubFedAvgUn, FedConfig, FederatedAlgorithm, Federation};
use sub_fedavg::data::{partition_pathological, PartitionConfig, SynthVision};
use sub_fedavg::metrics::comm::human_bytes;
use sub_fedavg::nn::models::ModelSpec;

fn main() {
    // 1. Data: a 10-class MNIST stand-in (see DESIGN.md §2 for the
    //    substitution rationale), split so each client holds two shards —
    //    i.e. at most two classes (the paper's §4.1 partition).
    let dataset = SynthVision::mnist_like(7, 1);
    let clients = partition_pathological(
        dataset.train(),
        dataset.test(),
        &PartitionConfig { num_clients: 16, shard_size: 18, ..Default::default() },
    );
    println!("federation: {} clients, ~2 classes each", clients.len());

    // 2. Model + federation config (the paper's optimizer settings).
    let spec = ModelSpec::cnn5(1, 16, 16, 10);
    let fed = Federation::new(
        spec,
        clients,
        FedConfig { rounds: 12, sample_frac: 0.5, eval_every: 3, ..Default::default() },
    );

    // 3. Run Sub-FedAvg (Un) toward 50% sparsity.
    let mut algo = SubFedAvgUn::new(fed, 0.5);
    println!("running {} ...", algo.name());
    let history = algo.run();

    // 4. Report.
    for r in &history.records {
        if let Some(acc) = r.avg_acc {
            println!(
                "round {:>3}: accuracy {:>5.1}%  sparsity {:>4.1}%  comm {}",
                r.round,
                100.0 * acc,
                100.0 * r.avg_pruned_params,
                human_bytes(r.cum_bytes),
            );
        }
    }
    println!(
        "final: accuracy {:.1}% at {:.0}% sparsity, total communication {}",
        100.0 * history.final_avg_acc(),
        100.0 * history.final_pruned_params(),
        human_bytes(history.total_bytes()),
    );
}
