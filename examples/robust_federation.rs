//! Failure injection: how Sub-FedAvg degrades when clients crash
//! mid-round. Real cross-device federations lose participants constantly
//! (the paper scopes this out in §1.1; the engine simulates it).
//!
//! Runs the same federation at increasing dropout probabilities and prints
//! the accuracy/communication trade-off, plus a CSV of the most reliable
//! run for external plotting.
//!
//! ```sh
//! cargo run --release --example robust_federation
//! ```

use sub_fedavg::core::{algorithms::SubFedAvgUn, FedConfig, FederatedAlgorithm, Federation};
use sub_fedavg::data::{partition_pathological, PartitionConfig, SynthVision};
use sub_fedavg::metrics::comm::human_bytes;
use sub_fedavg::metrics::report::Table;
use sub_fedavg::nn::models::ModelSpec;
use sub_fedavg::pruning::UnstructuredController;

fn run(dropout_prob: f32) -> sub_fedavg::core::History {
    let dataset = SynthVision::mnist_like(47, 1);
    let clients = partition_pathological(
        dataset.train(),
        dataset.test(),
        &PartitionConfig { num_clients: 12, shard_size: 25, ..Default::default() },
    );
    let fed = Federation::new(
        ModelSpec::cnn5(1, 16, 16, 10),
        clients,
        FedConfig {
            rounds: 10,
            sample_frac: 0.5,
            eval_every: 10,
            dropout_prob,
            ..Default::default()
        },
    );
    let mut controller = UnstructuredController::paper_defaults(0.5);
    controller.rate = 0.15;
    SubFedAvgUn::with_controller(fed, controller).run()
}

fn main() {
    println!("Sub-FedAvg (Un) under client dropout\n");
    let mut table = Table::new(
        "accuracy and cost vs dropout probability (10 rounds, MNIST stand-in)",
        &["dropout", "final accuracy", "sparsity", "communication"],
    );
    let mut first_history = None;
    for &p in &[0.0f32, 0.2, 0.5, 0.8] {
        let h = run(p);
        table.row(&[
            format!("{:.0}%", 100.0 * p),
            format!("{:.1}%", 100.0 * h.final_avg_acc()),
            format!("{:.0}%", 100.0 * h.final_pruned_params()),
            human_bytes(h.total_bytes()),
        ]);
        if first_history.is_none() {
            first_history = Some(h);
        }
    }
    println!("{}", table.render());
    println!("per-round CSV of the reliable run (History::to_csv):\n");
    println!("{}", first_history.expect("at least one run").to_csv());
}
