//! The paper's "Client Subnetwork Observation" (§3.1): clients with
//! overlapping labels end up with *similar subnetworks* — without ever
//! sharing data or label information. Sub-FedAvg exploits exactly this to
//! find each client its "partners" in the federation.
//!
//! This example runs Sub-FedAvg (Un), then compares every client pair's
//! mask similarity (Jaccard over kept weights) against their label-set
//! similarity, and reports the mean mask similarity of label-overlapping
//! vs disjoint pairs.
//!
//! ```sh
//! cargo run --release --example partner_discovery
//! ```

use sub_fedavg::core::analysis::partner_separation;
use sub_fedavg::core::{algorithms::SubFedAvgUn, FedConfig, FederatedAlgorithm, Federation};
use sub_fedavg::data::{partition_pathological, PartitionConfig, SynthVision};
use sub_fedavg::metrics::report::Table;
use sub_fedavg::nn::models::ModelSpec;

fn main() {
    let dataset = SynthVision::mnist_like(31, 1);
    let clients = partition_pathological(
        dataset.train(),
        dataset.test(),
        &PartitionConfig { num_clients: 16, shard_size: 18, ..Default::default() },
    );
    let fed = Federation::new(
        ModelSpec::cnn5(1, 16, 16, 10),
        clients.clone(),
        FedConfig { rounds: 12, sample_frac: 0.6, eval_every: 12, ..Default::default() },
    );
    let mut algo = SubFedAvgUn::new(fed, 0.6);
    println!("running {} to grow personalized subnetworks ...", algo.name());
    let history = algo.run();
    println!(
        "done: accuracy {:.1}%, sparsity {:.0}%\n",
        100.0 * history.final_avg_acc(),
        100.0 * history.final_pruned_params()
    );

    let sep = partner_separation(&clients, algo.final_masks(), 0.05);

    let mut table = Table::new(
        "Subnetwork similarity by label relationship",
        &["client-pair relationship", "pairs", "mean mask Jaccard"],
    );
    table.row(&[
        "labels overlap".into(),
        sep.overlap_pairs.to_string(),
        format!("{:.4}", sep.mean_overlap_similarity),
    ]);
    table.row(&[
        "labels disjoint".into(),
        sep.disjoint_pairs.to_string(),
        format!("{:.4}", sep.mean_disjoint_similarity),
    ]);
    println!("{}", table.render());
    println!(
        "observation holds: overlapping pairs {} disjoint pairs",
        if sep.observation_holds() {
            "share MORE of their subnetwork than"
        } else {
            "do NOT share more than (unexpected at this scale)"
        }
    );
}
