//! Communication efficiency (§4.2.2): how many bytes does each algorithm
//! spend, and what does a megabyte of uplink buy in accuracy?
//!
//! Prints each algorithm's accuracy-vs-communication trajectory plus the
//! paper's analytic costs at full paper scale (LeNet-5, 100 clients,
//! 10/round) so the scaled simulation can be compared against the exact
//! Table-1 numbers.
//!
//! ```sh
//! cargo run --release --example communication_budget
//! ```

use sub_fedavg::core::{
    algorithms::{FedAvg, FedMtl, LgFedAvg, SubFedAvgUn},
    FedConfig, FederatedAlgorithm, Federation,
};
use sub_fedavg::data::{partition_pathological, PartitionConfig, SynthVision};
use sub_fedavg::metrics::comm::{dense_run_bytes, human_bytes, mtl_run_bytes};
use sub_fedavg::metrics::report::{render_series, Table};
use sub_fedavg::nn::models::ModelSpec;

fn federation(rounds: usize) -> Federation {
    let dataset = SynthVision::mnist_like(23, 1);
    let clients = partition_pathological(
        dataset.train(),
        dataset.test(),
        &PartitionConfig { num_clients: 12, shard_size: 25, ..Default::default() },
    );
    Federation::new(
        ModelSpec::cnn5(1, 16, 16, 10),
        clients,
        FedConfig { rounds, sample_frac: 0.5, eval_every: 2, ..Default::default() },
    )
}

fn main() {
    let rounds = 8;
    let mut algos: Vec<Box<dyn FederatedAlgorithm>> = vec![
        Box::new(FedAvg::new(federation(rounds))),
        Box::new(LgFedAvg::new(federation(rounds))),
        Box::new(FedMtl::new(federation(rounds), 0.1)),
        Box::new(SubFedAvgUn::new(federation(rounds), 0.5)),
    ];

    let mut table = Table::new(
        "Measured communication (scaled simulation, MNIST stand-in)",
        &["algorithm", "total bytes", "final accuracy"],
    );
    println!("accuracy vs cumulative communication:");
    for algo in &mut algos {
        let name = algo.name();
        let h = algo.run();
        let xs: Vec<f32> = h
            .records
            .iter()
            .filter(|r| r.avg_acc.is_some())
            .map(|r| r.cum_bytes as f32 / 1e6)
            .collect();
        let ys: Vec<f32> = h.records.iter().filter_map(|r| r.avg_acc).collect();
        print!("{}", render_series(&format!("{name} (x = MB transferred)"), &xs, &ys));
        table.row(&[
            name,
            human_bytes(h.total_bytes()),
            format!("{:.1}%", 100.0 * h.final_avg_acc()),
        ]);
    }
    println!("{}", table.render());

    // The paper-scale analytic costs (Table 1, CIFAR-10 column).
    let mut paper = Table::new(
        "Analytic paper-scale costs (LeNet-5, |W| = 62k, 10 clients/round)",
        &["algorithm", "rounds", "cost", "paper reports"],
    );
    paper.row(&[
        "FedAvg".into(),
        "500".into(),
        human_bytes(dense_run_bytes(500, 10, 62_000)),
        "2.48 GB".into(),
    ]);
    paper.row(&[
        "MTL".into(),
        "500".into(),
        human_bytes(mtl_run_bytes(500, 10, 62_000)),
        "16.12 GB".into(),
    ]);
    paper.row(&[
        "Sub-FedAvg (Un) 50% (≈half kept)".into(),
        "500".into(),
        human_bytes(dense_run_bytes(500, 10, 62_000) * 3 / 4),
        "1.88 GB".into(),
    ]);
    println!("{}", paper.render());
}
