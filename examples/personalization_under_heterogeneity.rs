//! The paper's central comparison (Remark-2): under pathological non-IID,
//! traditional FedAvg performs *worse* than clients training alone, while
//! Sub-FedAvg beats both — so federation becomes worthwhile again.
//!
//! Runs Standalone, FedAvg, and Sub-FedAvg (Un) on the same federation and
//! prints a Table-1-style summary.
//!
//! ```sh
//! cargo run --release --example personalization_under_heterogeneity
//! ```

use sub_fedavg::core::{
    algorithms::{FedAvg, Standalone, SubFedAvgUn},
    FedConfig, FederatedAlgorithm, Federation,
};
use sub_fedavg::data::{partition_pathological, ClientData, PartitionConfig, SynthVision};
use sub_fedavg::metrics::comm::human_bytes;
use sub_fedavg::metrics::report::{pct, Table};
use sub_fedavg::nn::models::ModelSpec;

fn build_clients() -> Vec<ClientData> {
    // A harder, CIFAR-10-like stand-in: 3 channels, more noise.
    let dataset = SynthVision::cifar10_like(11, 1);
    partition_pathological(
        dataset.train(),
        dataset.test(),
        &PartitionConfig { num_clients: 12, shard_size: 25, ..Default::default() },
    )
}

fn federation(rounds: usize) -> Federation {
    Federation::new(
        ModelSpec::lenet5(3, 16, 16, 10),
        build_clients(),
        FedConfig { rounds, sample_frac: 0.5, eval_every: rounds, ..Default::default() },
    )
}

fn main() {
    let rounds = 10;
    let mut table = Table::new(
        "Personalized accuracy under pathological non-IID (CIFAR-10 stand-in, LeNet-5)",
        &["algorithm", "avg accuracy", "sparsity", "communication"],
    );
    let mut runs: Vec<(String, _)> = Vec::new();
    let mut standalone = Standalone::new(federation(rounds));
    runs.push((standalone.name(), standalone.run()));
    let mut fedavg = FedAvg::new(federation(rounds));
    runs.push((fedavg.name(), fedavg.run()));
    let mut sub = SubFedAvgUn::new(federation(rounds), 0.5);
    runs.push((sub.name(), sub.run()));

    for (name, h) in &runs {
        table.row(&[
            name.clone(),
            pct(h.final_avg_acc()),
            pct(h.final_pruned_params()),
            human_bytes(h.total_bytes()),
        ]);
    }
    println!("{}", table.render());

    let standalone_acc = runs[0].1.final_avg_acc();
    let fedavg_acc = runs[1].1.final_avg_acc();
    let sub_acc = runs[2].1.final_avg_acc();
    println!("Remark-2 check:");
    println!(
        "  FedAvg {} Standalone   (paper: traditional FedAvg loses under non-IID)",
        if fedavg_acc < standalone_acc { "<" } else { ">=" }
    );
    println!(
        "  Sub-FedAvg {} Standalone (paper: pruning-personalized federation wins)",
        if sub_acc > standalone_acc { ">" } else { "<=" }
    );
}
